"""Generalization hierarchies (taxonomy trees) for categorical attributes.

The paper uses domain hierarchies in two places:

* the semantic distance between two categorical values ``v1`` and ``v2`` is
  ``h(v1, v2) / H`` where ``h`` is the height of their lowest common ancestor
  and ``H`` is the height of the hierarchy (Section II-C), and
* generalization replaces a set of categorical values by their lowest common
  ancestor (e.g. ``{Private, Self-employed}`` becomes ``Non-government``).

A :class:`Taxonomy` is an immutable rooted tree whose leaves are the concrete
attribute values.  Internal nodes are generalized values.  The tree is built
from a nested-mapping specification, for example::

    Taxonomy.from_spec("ANY", {
        "Government": ["Federal-gov", "State-gov", "Local-gov"],
        "Private": [],
    })

which creates a root ``ANY`` with an internal node ``Government`` (three leaf
children) and a leaf ``Private``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.exceptions import HierarchyError

# A specification is either a list of leaf names or a mapping from child name
# to a nested specification.
Spec = Mapping[str, "Spec"] | Sequence[str]


class _Node:
    """A single node of a taxonomy tree (internal helper)."""

    __slots__ = ("label", "parent", "children", "depth")

    def __init__(self, label: str, parent: "_Node | None"):
        self.label = label
        self.parent = parent
        self.children: list[_Node] = []
        self.depth = 0 if parent is None else parent.depth + 1

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"_Node({self.label!r}, depth={self.depth})"


class Taxonomy:
    """An immutable generalization hierarchy over a categorical domain.

    The *height* of the taxonomy is the maximum number of edges from the root
    to any leaf.  The *height of a node* is measured from the leaf level, i.e.
    leaves have height 0 and the root has height equal to the taxonomy height
    (this matches the ``h``/``H`` notation of Section II-C of the paper).
    """

    def __init__(self, root: _Node, nodes: Mapping[str, _Node]):
        self._root = root
        self._nodes = dict(nodes)
        self._leaves = tuple(
            node.label for node in self._nodes.values() if not node.children
        )
        self._height = max(self._nodes[leaf].depth for leaf in self._leaves)

    # -- construction --------------------------------------------------------------
    @classmethod
    def from_spec(cls, root_label: str, spec: Spec) -> "Taxonomy":
        """Build a taxonomy from a nested specification.

        Parameters
        ----------
        root_label:
            Label of the root (the fully generalized value, e.g. ``"ANY"``).
        spec:
            Either a sequence of leaf labels, or a mapping from child label to
            a nested specification.  A child mapped to an empty sequence is a
            leaf.
        """
        root = _Node(root_label, None)
        nodes: dict[str, _Node] = {root_label: root}

        def build(parent: _Node, sub: Spec) -> None:
            if isinstance(sub, Mapping):
                items: Iterable[tuple[str, Spec]] = sub.items()
            else:
                items = ((label, ()) for label in sub)
            for label, child_spec in items:
                if label in nodes:
                    raise HierarchyError(f"duplicate label {label!r} in taxonomy")
                child = _Node(label, parent)
                parent.children.append(child)
                nodes[label] = child
                if child_spec:
                    build(child, child_spec)

        build(root, spec)
        if len(nodes) == 1:
            raise HierarchyError("a taxonomy requires at least one value below the root")
        return cls(root, nodes)

    @classmethod
    def flat(cls, root_label: str, values: Sequence[str]) -> "Taxonomy":
        """Build a one-level taxonomy: every value is a direct child of the root."""
        return cls.from_spec(root_label, list(values))

    # -- basic accessors -----------------------------------------------------------
    @property
    def root(self) -> str:
        """Label of the root node (the fully generalized value)."""
        return self._root.label

    @property
    def height(self) -> int:
        """Height ``H`` of the hierarchy (edges from root to the deepest leaf)."""
        return self._height

    @property
    def leaves(self) -> tuple[str, ...]:
        """All leaf labels (the concrete attribute values)."""
        return self._leaves

    def __contains__(self, label: object) -> bool:
        return label in self._nodes

    def __repr__(self) -> str:
        return f"Taxonomy(root={self.root!r}, leaves={len(self.leaves)}, height={self.height})"

    def _node(self, label: str) -> _Node:
        try:
            return self._nodes[label]
        except KeyError:
            raise HierarchyError(f"value {label!r} is not part of the taxonomy") from None

    def is_leaf(self, label: str) -> bool:
        """True when ``label`` is a concrete (non-generalized) value."""
        return not self._node(label).children

    def parent(self, label: str) -> str | None:
        """The parent label of ``label``, or ``None`` for the root."""
        node = self._node(label).parent
        return None if node is None else node.label

    def children(self, label: str) -> tuple[str, ...]:
        """The child labels of ``label`` (empty for leaves)."""
        return tuple(child.label for child in self._node(label).children)

    def node_height(self, label: str) -> int:
        """Height of ``label`` measured from the leaf level of the deepest leaf."""
        return self._height - self._node(label).depth

    def leaves_under(self, label: str) -> tuple[str, ...]:
        """All leaf labels in the subtree rooted at ``label``."""
        node = self._node(label)
        if not node.children:
            return (node.label,)
        result: list[str] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.children:
                stack.extend(current.children)
            else:
                result.append(current.label)
        return tuple(result)

    def ancestors(self, label: str) -> tuple[str, ...]:
        """Labels on the path from ``label`` (exclusive) up to the root (inclusive)."""
        node = self._node(label).parent
        path: list[str] = []
        while node is not None:
            path.append(node.label)
            node = node.parent
        return tuple(path)

    # -- semantic operations -------------------------------------------------------
    def lowest_common_ancestor(self, labels: Iterable[str]) -> str:
        """The lowest node whose subtree contains every label in ``labels``."""
        labels = list(labels)
        if not labels:
            raise HierarchyError("lowest_common_ancestor requires at least one value")
        paths: list[list[str]] = []
        for label in labels:
            node = self._node(label)
            path: list[str] = []
            while node is not None:
                path.append(node.label)
                node = node.parent
            paths.append(path[::-1])  # root ... label
        lca = self._root.label
        for depth in range(min(len(path) for path in paths)):
            candidates = {path[depth] for path in paths}
            if len(candidates) == 1:
                lca = candidates.pop()
            else:
                break
        return lca

    def lca_height(self, first: str, second: str) -> int:
        """Height ``h(v1, v2)`` of the lowest common ancestor of two values."""
        return self.node_height(self.lowest_common_ancestor([first, second]))

    def distance(self, first: str, second: str) -> float:
        """Normalised semantic distance ``h(v1, v2) / H`` (Section II-C)."""
        if first == second:
            return 0.0
        return self.lca_height(first, second) / self.height

    def generalize(self, values: Iterable[str]) -> str:
        """Generalized label covering every value in ``values`` (their LCA)."""
        return self.lowest_common_ancestor(values)
