"""Microdata substrate: schemas, tables, hierarchies, distances, and datasets."""

from repro.data.adult import adult_schema, generate_adult
from repro.data.distance import (
    attribute_distance_matrix,
    discrete_distance_matrix,
    hierarchy_distance_matrix,
    numeric_distance_matrix,
    validate_distance_matrix,
)
from repro.data.hierarchy import Taxonomy
from repro.data.io import open_table, read_csv, write_csv
from repro.data.schema import (
    Attribute,
    AttributeKind,
    AttributeRole,
    Schema,
    categorical_qi,
    numeric_qi,
    sensitive,
)
from repro.data.source import (
    DEFAULT_CHUNK_ROWS,
    CsvTableSource,
    InMemoryTableSource,
    NpzTableSource,
    TableSource,
    as_source,
    as_table,
    write_npz,
)
from repro.data.table import AttributeDomain, MicrodataTable

__all__ = [
    "Attribute",
    "AttributeDomain",
    "AttributeKind",
    "AttributeRole",
    "CsvTableSource",
    "DEFAULT_CHUNK_ROWS",
    "InMemoryTableSource",
    "MicrodataTable",
    "NpzTableSource",
    "Schema",
    "TableSource",
    "Taxonomy",
    "adult_schema",
    "as_source",
    "as_table",
    "attribute_distance_matrix",
    "categorical_qi",
    "discrete_distance_matrix",
    "generate_adult",
    "hierarchy_distance_matrix",
    "numeric_distance_matrix",
    "numeric_qi",
    "open_table",
    "read_csv",
    "sensitive",
    "validate_distance_matrix",
    "write_csv",
]
