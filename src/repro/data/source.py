"""Chunked table sources: the out-of-core ingestion layer.

A :class:`TableSource` is the unit every scale-aware consumer ingests: it
knows the table's schema, its row count and its full attribute domains *up
front* (one cheap metadata pass), and then serves the rows as a stream of
bounded :class:`~repro.data.table.MicrodataTable` chunks that all share the
full-table domains - so integer codes agree across chunks and with an
in-RAM load of the same data.  That agreement is what lets the factored
prior backend fold chunks through its exact append deltas and still match
the all-in-RAM fit bitwise (see
:meth:`repro.knowledge.backend.FactoredPriorBackend.fit`).

Three implementations cover the ingestion shapes the CLI and benches need:

* :class:`InMemoryTableSource` - wraps a resident table (chunks are
  codes-backed selections, no copies of the raw values);
* :class:`CsvTableSource` - streams a CSV file; a single pre-scan collects
  the row count and the per-attribute domains, then chunks are parsed and
  encoded one at a time;
* :class:`NpzTableSource` - memory-maps the integer code columns of an
  ``.npz`` written by :func:`write_npz` (uncompressed members are mapped
  directly out of the zip archive; compressed members fall back to a lazy
  per-column read), so opening a million-row table costs no row I/O at all.

:func:`repro.data.io.open_table` picks the implementation by file
extension.
"""

from __future__ import annotations

import csv
import zipfile
from pathlib import Path
from typing import Iterator, Protocol, runtime_checkable

import numpy as np

from repro.data.schema import Schema
from repro.data.table import AttributeDomain, MicrodataTable
from repro.exceptions import DataError

#: Rows per chunk when neither the source nor the caller picks a size.
DEFAULT_CHUNK_ROWS = 65536


def _resolve_chunk_rows(chunk_rows: int | None, default: int | None) -> int:
    resolved = chunk_rows if chunk_rows is not None else default
    if resolved is None:
        resolved = DEFAULT_CHUNK_ROWS
    if resolved < 1:
        raise DataError("chunk_rows must be a positive number of rows")
    return int(resolved)


@runtime_checkable
class TableSource(Protocol):
    """Anything that can stream one table as domain-aligned chunks."""

    @property
    def schema(self) -> Schema: ...

    @property
    def n_rows(self) -> int: ...

    def domains(self) -> dict[str, AttributeDomain]: ...

    def iter_chunks(self, chunk_rows: int | None = None) -> Iterator[MicrodataTable]: ...

    def table(self) -> MicrodataTable: ...


class InMemoryTableSource:
    """A resident :class:`MicrodataTable` viewed as a chunk stream.

    Chunks are codes-backed row selections sharing the parent's domain
    objects, so iterating allocates only the sliced code columns.
    """

    def __init__(self, table: MicrodataTable, *, chunk_rows: int | None = None):
        self._table = table
        self.chunk_rows = chunk_rows

    @property
    def schema(self) -> Schema:
        return self._table.schema

    @property
    def n_rows(self) -> int:
        return self._table.n_rows

    def domains(self) -> dict[str, AttributeDomain]:
        return {name: self._table.domain(name) for name in self.schema.names}

    def iter_chunks(self, chunk_rows: int | None = None) -> Iterator[MicrodataTable]:
        step = _resolve_chunk_rows(chunk_rows, self.chunk_rows)
        for start in range(0, self.n_rows, step):
            stop = min(start + step, self.n_rows)
            yield self._table.select(np.arange(start, stop, dtype=np.int64))

    def table(self) -> MicrodataTable:
        return self._table


class CsvTableSource:
    """Stream a CSV file (the :func:`repro.data.io.read_csv` format) in chunks.

    Construction makes one metadata pass over the file - counting rows and
    collecting every attribute's distinct values - so the full-table domains
    exist before the first chunk is parsed.  Rows then stream through
    :meth:`iter_chunks` one bounded block at a time; only the active chunk's
    values are ever resident.
    """

    def __init__(self, path: str | Path, schema: Schema, *, chunk_rows: int | None = None):
        self._path = Path(path)
        self._schema = schema
        self.chunk_rows = chunk_rows
        self._positions: dict[str, int] = {}
        self._n_rows = 0
        distinct: dict[str, set] = {name: set() for name in schema.names}
        for row, line_number in self._iter_rows():
            self._n_rows += 1
            for name in schema.names:
                distinct[name].add(row[self._positions[name]] if not schema[name].is_numeric
                                   else self._parse_number(row, name, line_number))
        if self._n_rows == 0:
            raise DataError(f"{self._path} holds no data rows")
        self._domains = {
            name: AttributeDomain(schema[name], sorted(distinct[name]))
            for name in schema.names
        }

    def _iter_rows(self):
        """Yield ``(row, line_number)`` for every data row, validating the header."""
        with self._path.open("r", newline="") as handle:
            reader = csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration:
                raise DataError(f"{self._path} is empty") from None
            missing = [name for name in self._schema.names if name not in header]
            if missing:
                raise DataError(f"{self._path} is missing columns {missing}")
            self._positions = {name: header.index(name) for name in self._schema.names}
            for line_number, row in enumerate(reader, start=2):
                if not row:
                    continue
                if len(row) < len(header):
                    raise DataError(
                        f"{self._path}:{line_number}: expected {len(header)} fields, got {len(row)}"
                    )
                yield row, line_number

    def _parse_number(self, row: list[str], name: str, line_number: int) -> float:
        raw = row[self._positions[name]]
        try:
            return float(raw)
        except ValueError:
            raise DataError(
                f"{self._path}:{line_number}: cannot parse {raw!r} as a number for {name!r}"
            ) from None

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def n_rows(self) -> int:
        return self._n_rows

    def domains(self) -> dict[str, AttributeDomain]:
        return dict(self._domains)

    def iter_chunks(self, chunk_rows: int | None = None) -> Iterator[MicrodataTable]:
        step = _resolve_chunk_rows(chunk_rows, self.chunk_rows)
        columns: dict[str, list] = {name: [] for name in self._schema.names}
        pending = 0
        for row, line_number in self._iter_rows():
            for name in self._schema.names:
                if self._schema[name].is_numeric:
                    columns[name].append(self._parse_number(row, name, line_number))
                else:
                    columns[name].append(row[self._positions[name]])
            pending += 1
            if pending == step:
                yield MicrodataTable(self._schema, columns, domains=self._domains)
                columns = {name: [] for name in self._schema.names}
                pending = 0
        if pending:
            yield MicrodataTable(self._schema, columns, domains=self._domains)

    def table(self) -> MicrodataTable:
        """Materialise the file as one codes-backed table (chunk-encoded)."""
        return _accumulate_codes(self)


class NpzTableSource:
    """Memory-map a code-column ``.npz`` table written by :func:`write_npz`.

    The archive stores one ``codes_<name>`` ``int32`` member and one
    ``dom_<name>`` domain member per attribute.  Uncompressed members are
    mapped straight out of the zip file (``np.memmap`` at the member's data
    offset), so nothing is read until a chunk slices it; compressed members
    (e.g. a hand-rolled archive) fall back to one lazy in-RAM read per
    column.
    """

    def __init__(self, path: str | Path, schema: Schema, *, chunk_rows: int | None = None):
        self._path = Path(path)
        self._schema = schema
        self.chunk_rows = chunk_rows
        if not self._path.exists():
            raise DataError(f"{self._path} does not exist")
        try:
            with zipfile.ZipFile(self._path) as archive:
                members = set(archive.namelist())
        except (OSError, zipfile.BadZipFile) as error:
            raise DataError(f"{self._path} is not a readable npz archive ({error})") from None
        missing = [
            name for name in schema.names
            if f"codes_{name}.npy" not in members or f"dom_{name}.npy" not in members
        ]
        if missing:
            raise DataError(
                f"{self._path} is missing code/domain members for attributes {missing} "
                "(write the file with repro.data.source.write_npz)"
            )
        self._domains: dict[str, AttributeDomain] = {}
        for attribute in schema:
            values = read_npz_member(self._path, f"dom_{attribute.name}.npy")
            self._domains[attribute.name] = AttributeDomain(attribute, values.tolist())
        self._codes: dict[str, np.ndarray] = {}
        lengths = {name: self._column(name).shape[0] for name in schema.names}
        if len(set(lengths.values())) != 1:
            raise DataError(f"{self._path} holds code columns of inconsistent lengths: {lengths}")
        self._n_rows = next(iter(lengths.values()))
        if self._n_rows == 0:
            raise DataError(f"{self._path} holds no rows")
        for name in schema.names:
            column = self._column(name)
            if column.ndim != 1 or column.dtype != np.int32:
                raise DataError(
                    f"{self._path}: member codes_{name} must be a one-dimensional int32 array"
                )

    def _column(self, name: str) -> np.ndarray:
        column = self._codes.get(name)
        if column is None:
            column = mmap_npz_member(self._path, f"codes_{name}.npy")
            self._codes[name] = column
        return column

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def n_rows(self) -> int:
        return self._n_rows

    def domains(self) -> dict[str, AttributeDomain]:
        return dict(self._domains)

    def iter_chunks(self, chunk_rows: int | None = None) -> Iterator[MicrodataTable]:
        step = _resolve_chunk_rows(chunk_rows, self.chunk_rows)
        for start in range(0, self.n_rows, step):
            stop = min(start + step, self.n_rows)
            codes = {
                name: np.asarray(self._column(name)[start:stop], dtype=np.int32)
                for name in self._schema.names
            }
            yield MicrodataTable.from_codes(self._schema, codes, self._domains)

    def table(self) -> MicrodataTable:
        """The whole file as one codes-backed table over the mapped columns."""
        codes = {name: self._column(name) for name in self._schema.names}
        return MicrodataTable.from_codes(self._schema, codes, self._domains)


def write_npz(path: str | Path, source: "TableSource | MicrodataTable") -> Path:
    """Write a table (or source) as an uncompressed code-column ``.npz``.

    The format :class:`NpzTableSource` memory-maps: per attribute one
    ``codes_<name>`` ``int32`` member plus one ``dom_<name>`` member holding
    the domain values in code order.  Uncompressed storage is deliberate -
    codes are small (4 bytes/cell) and ``ZIP_STORED`` members can be mapped
    without inflating the archive.
    """
    path = Path(path)
    table = source if isinstance(source, MicrodataTable) else as_source(source).table()
    arrays: dict[str, np.ndarray] = {}
    for attribute in table.schema:
        name = attribute.name
        domain = table.domain(name)
        arrays[f"codes_{name}"] = np.asarray(table.codes(name), dtype=np.int32)
        arrays[f"dom_{name}"] = (
            domain.values.astype(np.float64)
            if attribute.is_numeric
            else np.asarray(domain.values, dtype=np.str_)
        )
    np.savez(path, **arrays)
    return path


def as_source(table: "TableSource | MicrodataTable", *, chunk_rows: int | None = None) -> TableSource:
    """Normalise a table-or-source argument to a :class:`TableSource`."""
    if isinstance(table, MicrodataTable):
        return InMemoryTableSource(table, chunk_rows=chunk_rows)
    if isinstance(table, TableSource):
        return table
    raise DataError(
        f"expected a MicrodataTable or a TableSource, got {type(table).__name__}"
    )


def as_table(table: "TableSource | MicrodataTable") -> MicrodataTable:
    """Normalise a table-or-source argument to a (codes-backed) table."""
    if isinstance(table, MicrodataTable):
        return table
    if isinstance(table, TableSource):
        return table.table()
    raise DataError(
        f"expected a MicrodataTable or a TableSource, got {type(table).__name__}"
    )


def _accumulate_codes(source: TableSource) -> MicrodataTable:
    """One codes-backed table from a chunk stream (preallocated, no O(n^2) concat)."""
    schema = source.schema
    domains = source.domains()
    codes = {
        name: np.empty(source.n_rows, dtype=np.int32) for name in schema.names
    }
    cursor = 0
    for chunk in source.iter_chunks():
        stop = cursor + chunk.n_rows
        if stop > source.n_rows:
            raise DataError(
                f"table source yielded more rows than its declared {source.n_rows}"
            )
        for name in schema.names:
            codes[name][cursor:stop] = chunk.codes(name)
        cursor = stop
    if cursor != source.n_rows:
        raise DataError(
            f"table source yielded {cursor} rows but declared {source.n_rows}"
        )
    return MicrodataTable.from_codes(schema, codes, domains)


# -- npz member access ----------------------------------------------------------------
#
# np.load(..., mmap_mode=...) does not map npz members (it inflates them into
# RAM), so the mapping is done by hand: find the member's data offset inside
# the zip archive, parse the npy header there, and hand the rest to np.memmap.

def _member_data_offset(handle, info: zipfile.ZipInfo) -> int:
    """Byte offset of a zip member's payload (after its local file header)."""
    handle.seek(info.header_offset)
    local_header = handle.read(30)
    if len(local_header) != 30 or local_header[:4] != b"PK\x03\x04":
        raise DataError(f"corrupt zip local header for member {info.filename!r}")
    name_length = int.from_bytes(local_header[26:28], "little")
    extra_length = int.from_bytes(local_header[28:30], "little")
    return info.header_offset + 30 + name_length + extra_length


def mmap_npz_member(path: Path, member: str) -> np.ndarray:
    """Memory-map one uncompressed npz member (read it whole when compressed)."""
    try:
        with zipfile.ZipFile(path) as archive:
            info = archive.getinfo(member)
            if info.compress_type != zipfile.ZIP_STORED:
                with archive.open(member) as handle:
                    return np.lib.format.read_array(handle, allow_pickle=False)
        with path.open("rb") as handle:
            handle.seek(_member_data_offset(handle, info))
            version = np.lib.format.read_magic(handle)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
            else:
                raise DataError(
                    f"{path}: member {member!r} uses unsupported npy format {version}"
                )
            offset = handle.tell()
        return np.memmap(
            path, dtype=dtype, mode="r", offset=offset, shape=shape,
            order="F" if fortran else "C",
        )
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as error:
        raise DataError(f"{path}: cannot read npz member {member!r} ({error})") from None


def read_npz_member(path: Path, member: str) -> np.ndarray:
    """Read one npz member into RAM (for the small domain arrays)."""
    try:
        with zipfile.ZipFile(path) as archive:
            with archive.open(member) as handle:
                return np.lib.format.read_array(handle, allow_pickle=False)
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as error:
        raise DataError(f"{path}: cannot read npz member {member!r} ({error})") from None
