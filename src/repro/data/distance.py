"""Semantic distance matrices between attribute values (Section II-C).

Every attribute ``Ai`` is associated with an ``r x r`` distance matrix ``Mi``
whose ``(j, k)`` entry is the normalised semantic distance between the j-th
and k-th domain values:

* numeric attributes:   ``d_jk = |v_j - v_k| / R`` where ``R`` is the domain range,
* categorical attributes with a taxonomy:  ``d_jk = h(v_j, v_k) / H`` where
  ``h`` is the height of the lowest common ancestor and ``H`` the hierarchy
  height,
* categorical attributes without a taxonomy: the discrete metric
  (0 on the diagonal, 1 elsewhere).

All distances therefore live in ``[0, 1]``, which is what makes a single
bandwidth value such as ``b = 0.3`` meaningful across attributes.
"""

from __future__ import annotations

import numpy as np

from repro.data.table import AttributeDomain
from repro.exceptions import DataError


def numeric_distance_matrix(values: np.ndarray) -> np.ndarray:
    """Distance matrix ``|v_j - v_k| / R`` for a sorted vector of numeric values."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise DataError("numeric_distance_matrix requires a non-empty 1-D value vector")
    spread = float(values.max() - values.min())
    differences = np.abs(values[:, None] - values[None, :])
    if spread == 0.0:
        return np.zeros_like(differences)
    return differences / spread


def hierarchy_distance_matrix(domain: AttributeDomain) -> np.ndarray:
    """Distance matrix ``h(v_j, v_k) / H`` for a categorical domain with a taxonomy."""
    taxonomy = domain.attribute.taxonomy
    if taxonomy is None:
        raise DataError(
            f"attribute {domain.attribute.name!r} has no taxonomy; "
            "use discrete_distance_matrix instead"
        )
    labels = [str(v) for v in domain.values.tolist()]
    size = len(labels)
    matrix = np.zeros((size, size), dtype=np.float64)
    for j in range(size):
        for k in range(j + 1, size):
            distance = taxonomy.distance(labels[j], labels[k])
            matrix[j, k] = distance
            matrix[k, j] = distance
    return matrix


def discrete_distance_matrix(size: int) -> np.ndarray:
    """The discrete metric on a domain of ``size`` values (0 on the diagonal, 1 elsewhere)."""
    if size <= 0:
        raise DataError("domain size must be positive")
    return 1.0 - np.eye(size, dtype=np.float64)


def attribute_distance_matrix(domain: AttributeDomain) -> np.ndarray:
    """The Section II-C distance matrix appropriate for ``domain``.

    Numeric domains use the normalised absolute difference, categorical
    domains use the taxonomy distance when a taxonomy is attached and the
    discrete metric otherwise.
    """
    if domain.attribute.is_numeric:
        return numeric_distance_matrix(np.asarray(domain.values, dtype=np.float64))
    if domain.attribute.taxonomy is not None:
        return hierarchy_distance_matrix(domain)
    return discrete_distance_matrix(domain.size)


def validate_distance_matrix(matrix: np.ndarray) -> None:
    """Check that ``matrix`` is a valid normalised distance matrix.

    The matrix must be square, symmetric, zero on the diagonal and have all
    entries in ``[0, 1]``.  Raises :class:`~repro.exceptions.DataError` when a
    property fails.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise DataError("distance matrix must be square")
    if not np.allclose(np.diag(matrix), 0.0):
        raise DataError("distance matrix must be zero on the diagonal")
    if not np.allclose(matrix, matrix.T):
        raise DataError("distance matrix must be symmetric")
    if matrix.min() < -1e-12 or matrix.max() > 1.0 + 1e-12:
        raise DataError("distance matrix entries must lie in [0, 1]")
