"""Schema description for microdata tables.

A microdata table (the kind of table a hospital or census bureau would
release) has three kinds of attributes:

* **quasi-identifier (QI)** attributes, which an adversary may link to
  external information (Age, Sex, Zipcode, ...),
* a single **sensitive** attribute whose values must be protected
  (Disease, Occupation, Salary, ...), and
* optional **insensitive** attributes that play no role in anonymization.

The paper (Section II-A) considers ``d`` quasi-identifier attributes
``A1..Ad`` and one sensitive attribute ``S``.  This module provides the
:class:`Attribute` and :class:`Schema` classes that encode that structure,
including whether each attribute is numeric or categorical and, for
categorical attributes, an optional generalization hierarchy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.data.hierarchy import Taxonomy
from repro.exceptions import SchemaError


class AttributeKind(enum.Enum):
    """Whether an attribute's domain is ordered-numeric or categorical."""

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"


class AttributeRole(enum.Enum):
    """The role an attribute plays in anonymization."""

    QUASI_IDENTIFIER = "quasi_identifier"
    SENSITIVE = "sensitive"
    INSENSITIVE = "insensitive"


@dataclass(frozen=True)
class Attribute:
    """A single attribute (column) of a microdata table.

    Parameters
    ----------
    name:
        Column name, unique within a schema.
    kind:
        :class:`AttributeKind.NUMERIC` or :class:`AttributeKind.CATEGORICAL`.
    role:
        :class:`AttributeRole`; exactly one attribute per schema may be
        :class:`AttributeRole.SENSITIVE`.
    taxonomy:
        Optional generalization hierarchy for categorical attributes.  Used
        both for semantic distances (Section II-C of the paper) and for
        reporting generalized values.
    """

    name: str
    kind: AttributeKind
    role: AttributeRole = AttributeRole.QUASI_IDENTIFIER
    taxonomy: Taxonomy | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be a non-empty string")
        if self.taxonomy is not None and self.kind is not AttributeKind.CATEGORICAL:
            raise SchemaError(
                f"attribute {self.name!r}: only categorical attributes may carry a taxonomy"
            )

    @property
    def is_numeric(self) -> bool:
        """True when the attribute has an ordered numeric domain."""
        return self.kind is AttributeKind.NUMERIC

    @property
    def is_categorical(self) -> bool:
        """True when the attribute has an unordered categorical domain."""
        return self.kind is AttributeKind.CATEGORICAL

    @property
    def is_quasi_identifier(self) -> bool:
        """True when the attribute is part of the quasi-identifier."""
        return self.role is AttributeRole.QUASI_IDENTIFIER

    @property
    def is_sensitive(self) -> bool:
        """True when the attribute is the sensitive attribute."""
        return self.role is AttributeRole.SENSITIVE


def numeric_qi(name: str) -> Attribute:
    """Convenience constructor for a numeric quasi-identifier attribute."""
    return Attribute(name, AttributeKind.NUMERIC, AttributeRole.QUASI_IDENTIFIER)


def categorical_qi(name: str, taxonomy: Taxonomy | None = None) -> Attribute:
    """Convenience constructor for a categorical quasi-identifier attribute."""
    return Attribute(name, AttributeKind.CATEGORICAL, AttributeRole.QUASI_IDENTIFIER, taxonomy)


def sensitive(name: str, *, numeric: bool = False, taxonomy: Taxonomy | None = None) -> Attribute:
    """Convenience constructor for the sensitive attribute."""
    kind = AttributeKind.NUMERIC if numeric else AttributeKind.CATEGORICAL
    return Attribute(name, kind, AttributeRole.SENSITIVE, taxonomy)


class Schema:
    """An ordered collection of :class:`Attribute` objects.

    The schema validates that attribute names are unique and that at most one
    attribute is marked sensitive.  Attribute lookup is by name.
    """

    def __init__(self, attributes: Iterable[Attribute]):
        attributes = list(attributes)
        if not attributes:
            raise SchemaError("a schema requires at least one attribute")
        names = [attribute.name for attribute in attributes]
        if len(set(names)) != len(names):
            duplicates = sorted({name for name in names if names.count(name) > 1})
            raise SchemaError(f"duplicate attribute names in schema: {duplicates}")
        sensitive_names = [a.name for a in attributes if a.is_sensitive]
        if len(sensitive_names) > 1:
            raise SchemaError(
                f"a schema may contain at most one sensitive attribute, got {sensitive_names}"
            )
        self._attributes: tuple[Attribute, ...] = tuple(attributes)
        self._by_name: Mapping[str, Attribute] = {a.name: a for a in attributes}

    # -- basic container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self):
        return iter(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"unknown attribute {name!r}; schema has {self.names}") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{a.name}:{a.kind.value[:3]}:{a.role.value.split('_')[0]}" for a in self._attributes
        )
        return f"Schema({parts})"

    # -- derived views -------------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        """All attribute names in declaration order."""
        return tuple(a.name for a in self._attributes)

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """All attributes in declaration order."""
        return self._attributes

    @property
    def quasi_identifiers(self) -> tuple[Attribute, ...]:
        """The quasi-identifier attributes in declaration order."""
        return tuple(a for a in self._attributes if a.is_quasi_identifier)

    @property
    def quasi_identifier_names(self) -> tuple[str, ...]:
        """Names of the quasi-identifier attributes in declaration order."""
        return tuple(a.name for a in self.quasi_identifiers)

    @property
    def sensitive_attribute(self) -> Attribute:
        """The unique sensitive attribute.

        Raises
        ------
        SchemaError
            If the schema declares no sensitive attribute.
        """
        for attribute in self._attributes:
            if attribute.is_sensitive:
                return attribute
        raise SchemaError("schema declares no sensitive attribute")

    @property
    def has_sensitive_attribute(self) -> bool:
        """True when the schema declares a sensitive attribute."""
        return any(a.is_sensitive for a in self._attributes)

    def subset(self, names: Sequence[str]) -> "Schema":
        """Return a new schema containing only ``names`` (in the given order)."""
        return Schema([self[name] for name in names])
