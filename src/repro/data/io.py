"""CSV import/export for microdata tables.

The format is deliberately plain: a header row with attribute names followed
by one row per tuple.  Attribute kinds and roles come from the caller-supplied
:class:`~repro.data.schema.Schema`, not from the file, so round-tripping a
table through :func:`write_csv` / :func:`read_csv` preserves it exactly.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.data.schema import Schema
from repro.data.table import MicrodataTable
from repro.exceptions import DataError


def write_csv(table: MicrodataTable, path: str | Path) -> None:
    """Write ``table`` to ``path`` as a CSV file with a header row."""
    path = Path(path)
    names = table.schema.names
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        columns = [table.column(name) for name in names]
        for row_index in range(table.n_rows):
            writer.writerow([_format_value(column[row_index]) for column in columns])


def read_csv(path: str | Path, schema: Schema) -> MicrodataTable:
    """Read a CSV file written by :func:`write_csv` back into a table.

    Parameters
    ----------
    path:
        CSV file with a header row naming every attribute of ``schema``.
    schema:
        Schema describing attribute kinds and roles; numeric attributes are
        parsed as floats, categorical attributes are kept as strings.
    """
    path = Path(path)
    with path.open("r", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path} is empty") from None
        missing = [name for name in schema.names if name not in header]
        if missing:
            raise DataError(f"{path} is missing columns {missing}")
        positions = {name: header.index(name) for name in schema.names}
        columns: dict[str, list] = {name: [] for name in schema.names}
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) < len(header):
                raise DataError(f"{path}:{line_number}: expected {len(header)} fields, got {len(row)}")
            for name in schema.names:
                raw = row[positions[name]]
                if schema[name].is_numeric:
                    try:
                        columns[name].append(float(raw))
                    except ValueError:
                        raise DataError(
                            f"{path}:{line_number}: cannot parse {raw!r} as a number for {name!r}"
                        ) from None
                else:
                    columns[name].append(raw)
    return MicrodataTable(schema, columns)


def open_table(path: str | Path, schema: Schema | None = None, chunk_rows: int | None = None):
    """Open a table file as a chunked :class:`~repro.data.source.TableSource`.

    The implementation is picked by extension: ``.csv`` streams through
    :class:`~repro.data.source.CsvTableSource` (one metadata pre-scan, then
    bounded chunks), ``.npz`` memory-maps the code columns through
    :class:`~repro.data.source.NpzTableSource`.  Any other extension raises
    a :class:`~repro.exceptions.DataError`.

    Parameters
    ----------
    path:
        File to open.
    schema:
        Schema describing attribute kinds and roles; defaults to the Adult
        (Table IV) schema the built-in generator uses.
    chunk_rows:
        Default chunk size for ``iter_chunks`` (positive; falls back to
        :data:`~repro.data.source.DEFAULT_CHUNK_ROWS`).
    """
    from repro.data.adult import adult_schema
    from repro.data.source import CsvTableSource, NpzTableSource

    path = Path(path)
    if schema is None:
        schema = adult_schema()
    suffix = path.suffix.lower()
    if suffix == ".csv":
        return CsvTableSource(path, schema, chunk_rows=chunk_rows)
    if suffix == ".npz":
        return NpzTableSource(path, schema, chunk_rows=chunk_rows)
    raise DataError(
        f"cannot open {path}: unsupported table format {suffix or '(no extension)'!r} "
        "(expected .csv or .npz)"
    )


def _format_value(value: object) -> str:
    """Render a cell value, writing integral floats without a trailing ``.0``."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)
