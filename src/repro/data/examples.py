"""Small worked-example datasets taken directly from the paper.

These tables are used in the documentation, the example scripts, and the
regression tests that check the library against the numbers the paper works
out by hand (Table I, Table II and Table III).
"""

from __future__ import annotations

import numpy as np

from repro.data.hierarchy import Taxonomy
from repro.data.schema import Attribute, AttributeKind, AttributeRole, Schema
from repro.data.table import MicrodataTable


def disease_taxonomy() -> Taxonomy:
    """A small disease hierarchy for the Table I example."""
    return Taxonomy.from_spec(
        "ANY-disease",
        {
            "Respiratory": ["Emphysema", "Flu"],
            "Digestive": ["Gastritis"],
            "Neoplasm": ["Cancer"],
        },
    )


def patient_schema() -> Schema:
    """Schema of the hospital table of Table I: Age, Sex, Disease (sensitive)."""
    return Schema(
        [
            Attribute("Age", AttributeKind.NUMERIC, AttributeRole.QUASI_IDENTIFIER),
            Attribute(
                "Sex",
                AttributeKind.CATEGORICAL,
                AttributeRole.QUASI_IDENTIFIER,
                Taxonomy.flat("ANY-sex", ["M", "F"]),
            ),
            Attribute(
                "Disease",
                AttributeKind.CATEGORICAL,
                AttributeRole.SENSITIVE,
                disease_taxonomy(),
            ),
        ]
    )


def table_i_patients() -> MicrodataTable:
    """The original patient table ``T`` of Table I(a)."""
    rows = [
        {"Age": 69, "Sex": "M", "Disease": "Emphysema"},
        {"Age": 45, "Sex": "F", "Disease": "Cancer"},
        {"Age": 52, "Sex": "F", "Disease": "Flu"},
        {"Age": 43, "Sex": "F", "Disease": "Gastritis"},
        {"Age": 42, "Sex": "F", "Disease": "Flu"},
        {"Age": 47, "Sex": "F", "Disease": "Cancer"},
        {"Age": 50, "Sex": "M", "Disease": "Flu"},
        {"Age": 56, "Sex": "M", "Disease": "Emphysema"},
        {"Age": 52, "Sex": "M", "Disease": "Gastritis"},
    ]
    return MicrodataTable.from_rows(patient_schema(), rows)


def table_i_groups() -> list[np.ndarray]:
    """The three groups of the generalized table ``T*`` of Table I(b).

    The generalized table groups tuples {1,2,3}, {4,5,6} and {7,8,9}
    (1-based in the paper; 0-based indices here).
    """
    return [
        np.array([0, 1, 2], dtype=np.int64),
        np.array([3, 4, 5], dtype=np.int64),
        np.array([6, 7, 8], dtype=np.int64),
    ]


def table_ii_prior() -> np.ndarray:
    """The adversary's prior-belief table of Table II(b).

    Rows are tuples ``t1, t2, t3``; columns are sensitive values ``(HIV, none)``.
    """
    return np.array(
        [
            [0.05, 0.95],
            [0.05, 0.95],
            [0.30, 0.70],
        ]
    )


def table_ii_sensitive_counts() -> np.ndarray:
    """Sensitive-value multiset of the Table II(a) group: one HIV, two none."""
    return np.array([1, 2], dtype=np.int64)


def table_iii_prior() -> np.ndarray:
    """The second adversary's prior-belief table of Table III.

    ``t1`` and ``t2`` are known not to have HIV; ``t3`` has prior 0.3.
    """
    return np.array(
        [
            [0.0, 1.0],
            [0.0, 1.0],
            [0.3, 0.7],
        ]
    )
