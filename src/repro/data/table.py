"""Column-oriented microdata table.

The :class:`MicrodataTable` is the central data substrate of the library.  It
plays the role pandas would usually play, but keeps only what anonymization
needs: a fixed :class:`~repro.data.schema.Schema`, one numpy column per
attribute, and integer *codes* for every attribute domain so that kernel
weights and Mondrian splits can be computed with vectorised numpy operations.

Numeric attributes are stored as ``float64`` columns; categorical attributes
are stored as ``int32`` code columns plus the list of category labels.  The
original values are always recoverable via :meth:`MicrodataTable.column`.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.data.schema import Attribute, Schema
from repro.exceptions import DataError, SchemaError


class AttributeDomain:
    """The observed domain of one attribute, with a value <-> code bijection.

    For numeric attributes the domain is the sorted array of distinct observed
    values; for categorical attributes it is the sorted list of distinct
    labels (or the taxonomy leaf order when a taxonomy is attached, so that
    codes are stable across tables that share a hierarchy).
    """

    def __init__(self, attribute: Attribute, values: Sequence):
        self.attribute = attribute
        if attribute.is_numeric:
            distinct = np.unique(np.asarray(values, dtype=np.float64))
        else:
            observed = {str(v) for v in values}
            if attribute.taxonomy is not None:
                leaves = [leaf for leaf in attribute.taxonomy.leaves]
                missing = observed - set(leaves)
                if missing:
                    raise DataError(
                        f"attribute {attribute.name!r}: values {sorted(missing)} are not "
                        f"leaves of the attached taxonomy"
                    )
                distinct = np.asarray(leaves, dtype=object)
            else:
                distinct = np.asarray(sorted(observed), dtype=object)
        if distinct.size == 0:
            raise DataError(f"attribute {attribute.name!r} has an empty domain")
        self._values = distinct
        self._index = {value: code for code, value in enumerate(distinct.tolist())}

    def __len__(self) -> int:
        return int(self._values.size)

    def __repr__(self) -> str:
        return f"AttributeDomain({self.attribute.name!r}, size={len(self)})"

    @property
    def values(self) -> np.ndarray:
        """Distinct domain values, in code order."""
        return self._values

    @property
    def size(self) -> int:
        """Number of distinct values in the domain."""
        return len(self)

    @property
    def numeric_range(self) -> float:
        """Range ``max - min`` of a numeric domain (the ``R`` of Section II-C)."""
        if not self.attribute.is_numeric:
            raise DataError(f"attribute {self.attribute.name!r} is not numeric")
        return float(self._values[-1] - self._values[0])

    def code_of(self, value) -> int:
        """Integer code of a single domain value."""
        key = float(value) if self.attribute.is_numeric else str(value)
        try:
            return self._index[key]
        except KeyError:
            raise DataError(
                f"value {value!r} is not in the domain of attribute {self.attribute.name!r}"
            ) from None

    def encode(self, values: Sequence) -> np.ndarray:
        """Vector of integer codes for ``values`` (all must belong to the domain).

        Vectorised: the (typically few) distinct values are looked up once and
        broadcast back, so encoding a column costs one ``np.unique`` pass
        instead of one dictionary lookup per row.
        """
        array = np.asarray(
            values, dtype=np.float64 if self.attribute.is_numeric else object
        )
        if array.size == 0:
            return np.asarray([], dtype=np.int32)
        try:
            uniques, inverse = np.unique(array, return_inverse=True)
        except TypeError:  # non-comparable mixed types: fall back to the row loop
            return np.asarray([self.code_of(value) for value in array], dtype=np.int32)
        codes = np.asarray([self.code_of(value) for value in uniques], dtype=np.int32)
        return codes[inverse]

    def decode(self, codes: Sequence[int]) -> np.ndarray:
        """Original values for a vector of integer codes."""
        codes = np.asarray(codes, dtype=np.int64)
        if codes.size and (codes.min() < 0 or codes.max() >= len(self)):
            raise DataError(
                f"code out of range for attribute {self.attribute.name!r} (domain size {len(self)})"
            )
        return self._values[codes]


class MicrodataTable:
    """An immutable microdata table ``T = {t1, ..., tn}`` (Section II-A).

    Construct either from per-column data (:meth:`from_columns`) or from a
    sequence of row mappings (:meth:`from_rows`).  Internally every attribute
    is stored both in original form and as integer codes against its
    :class:`AttributeDomain`.
    """

    def __init__(
        self,
        schema: Schema,
        columns: Mapping[str, Sequence],
        *,
        domains: Mapping[str, AttributeDomain] | None = None,
    ):
        self._schema = schema
        missing = [name for name in schema.names if name not in columns]
        if missing:
            raise DataError(f"missing columns for attributes {missing}")
        lengths = {name: len(columns[name]) for name in schema.names}
        if len(set(lengths.values())) != 1:
            raise DataError(f"columns have inconsistent lengths: {lengths}")
        self._n_rows = next(iter(lengths.values()))
        if self._n_rows == 0:
            raise DataError("a microdata table requires at least one row")

        self._domains: dict[str, AttributeDomain] = {}
        self._raw: dict[str, np.ndarray] = {}
        self._codes: dict[str, np.ndarray] = {}
        for attribute in schema:
            values = columns[attribute.name]
            if domains is not None and attribute.name in domains:
                domain = domains[attribute.name]
            else:
                domain = AttributeDomain(attribute, values)
            self._domains[attribute.name] = domain
            if attribute.is_numeric:
                raw = np.asarray(values, dtype=np.float64)
            else:
                raw = np.asarray([str(v) for v in values], dtype=object)
            self._raw[attribute.name] = raw
            self._codes[attribute.name] = domain.encode(raw)

    # -- constructors -------------------------------------------------------------
    @classmethod
    def from_columns(cls, schema: Schema, columns: Mapping[str, Sequence]) -> "MicrodataTable":
        """Build a table from a mapping of attribute name to column values."""
        return cls(schema, columns)

    @classmethod
    def from_codes(
        cls,
        schema: Schema,
        codes: Mapping[str, np.ndarray],
        domains: Mapping[str, AttributeDomain],
    ) -> "MicrodataTable":
        """Build a table directly from integer code columns (the out-of-core path).

        The codes-backed constructor is the memory-frugal dual of
        :meth:`from_columns`: it stores only the ``int32`` code columns plus
        the shared :class:`AttributeDomain` objects, and decodes original
        values *lazily* the first time :meth:`column` is called for an
        attribute.  Chunked table sources assemble million-row tables this
        way without ever materialising the per-row string objects a raw
        construction would allocate.  Codes must lie inside their domains;
        the resulting table is indistinguishable from one built from the
        decoded values (``decode(encode(x)) == x`` exactly).
        """
        table = object.__new__(cls)
        table._schema = schema
        missing = [name for name in schema.names if name not in codes]
        if missing:
            raise DataError(f"missing code columns for attributes {missing}")
        absent = [name for name in schema.names if name not in domains]
        if absent:
            raise DataError(f"missing domains for attributes {absent}")
        lengths = {name: len(codes[name]) for name in schema.names}
        if len(set(lengths.values())) != 1:
            raise DataError(f"code columns have inconsistent lengths: {lengths}")
        table._n_rows = next(iter(lengths.values()))
        if table._n_rows == 0:
            raise DataError("a microdata table requires at least one row")
        table._domains = {name: domains[name] for name in schema.names}
        table._raw = {}
        table._codes = {}
        for attribute in schema:
            name = attribute.name
            column = np.asarray(codes[name], dtype=np.int32)
            if column.ndim != 1:
                raise DataError(f"code column {name!r} must be one-dimensional")
            domain = table._domains[name]
            if column.size and (column.min() < 0 or column.max() >= domain.size):
                raise DataError(
                    f"code out of range for attribute {name!r} (domain size {domain.size})"
                )
            table._codes[name] = column
        return table

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Mapping[str, object]]) -> "MicrodataTable":
        """Build a table from an iterable of ``{attribute: value}`` mappings."""
        rows = list(rows)
        if not rows:
            raise DataError("from_rows requires at least one row")
        columns: dict[str, list] = {name: [] for name in schema.names}
        for position, row in enumerate(rows):
            for name in schema.names:
                if name not in row:
                    raise DataError(f"row {position} is missing attribute {name!r}")
                columns[name].append(row[name])
        return cls(schema, columns)

    # -- basic accessors -----------------------------------------------------------
    def __len__(self) -> int:
        return self._n_rows

    def __repr__(self) -> str:
        return f"MicrodataTable(rows={self._n_rows}, attributes={list(self._schema.names)})"

    @property
    def schema(self) -> Schema:
        """The table schema."""
        return self._schema

    @property
    def n_rows(self) -> int:
        """Number of tuples in the table."""
        return self._n_rows

    @property
    def quasi_identifier_names(self) -> tuple[str, ...]:
        """Names of the quasi-identifier attributes."""
        return self._schema.quasi_identifier_names

    @property
    def sensitive_name(self) -> str:
        """Name of the sensitive attribute."""
        return self._schema.sensitive_attribute.name

    def domain(self, name: str) -> AttributeDomain:
        """The :class:`AttributeDomain` of attribute ``name``."""
        if name not in self._domains:
            raise SchemaError(f"unknown attribute {name!r}")
        return self._domains[name]

    def column(self, name: str) -> np.ndarray:
        """Original values of attribute ``name`` (copy-free view).

        Codes-backed tables (see :meth:`from_codes`) decode the column from
        its integer codes on first access and cache the result.
        """
        if name not in self._raw:
            if name not in self._codes:
                raise SchemaError(f"unknown attribute {name!r}")
            self._raw[name] = self._domains[name].decode(self._codes[name])
        return self._raw[name]

    def codes(self, name: str) -> np.ndarray:
        """Integer codes of attribute ``name`` against its domain."""
        if name not in self._codes:
            raise SchemaError(f"unknown attribute {name!r}")
        return self._codes[name]

    def qi_code_matrix(self) -> np.ndarray:
        """``(n_rows, d)`` matrix of integer codes for the QI attributes."""
        names = self.quasi_identifier_names
        return np.column_stack([self._codes[name] for name in names]).astype(np.int32)

    def sensitive_codes(self) -> np.ndarray:
        """Integer codes of the sensitive attribute for every tuple."""
        return self._codes[self.sensitive_name]

    def sensitive_values(self) -> np.ndarray:
        """Original sensitive values for every tuple."""
        return self.column(self.sensitive_name)

    def sensitive_domain(self) -> AttributeDomain:
        """Domain of the sensitive attribute (``D[S]`` in the paper)."""
        return self._domains[self.sensitive_name]

    def row(self, index: int) -> dict[str, object]:
        """Row ``index`` as a plain ``{attribute: value}`` dictionary."""
        if not 0 <= index < self._n_rows:
            raise DataError(f"row index {index} out of range for table of {self._n_rows} rows")
        return {name: self.column(name)[index] for name in self._schema.names}

    def rows(self) -> list[dict[str, object]]:
        """All rows as dictionaries (materialises the table; intended for small tables)."""
        return [self.row(index) for index in range(self._n_rows)]

    def value_counts(self, name: str) -> dict[object, int]:
        """Histogram of attribute ``name`` keyed by original value."""
        codes = self.codes(name)
        counts = np.bincount(codes, minlength=self.domain(name).size)
        values = self.domain(name).values
        return {values[i]: int(counts[i]) for i in range(len(values)) if counts[i] > 0}

    def sensitive_distribution(self, indices: Sequence[int] | None = None) -> np.ndarray:
        """Empirical distribution of the sensitive attribute.

        Parameters
        ----------
        indices:
            Optional subset of row indices (e.g. one anonymized group).  When
            omitted the distribution over the whole table is returned, which is
            the public distribution ``Q`` used by t-closeness.
        """
        codes = self.sensitive_codes()
        if indices is not None:
            codes = codes[np.asarray(indices, dtype=np.int64)]
        if codes.size == 0:
            raise DataError("cannot compute a sensitive distribution over an empty group")
        counts = np.bincount(codes, minlength=self.sensitive_domain().size).astype(np.float64)
        return counts / counts.sum()

    def extend(self, columns: Mapping[str, Sequence]) -> "MicrodataTable":
        """A new table with the rows of ``columns`` appended (domains preserved).

        The append-only fast path for streams: only the appended rows are
        encoded, existing raw/code columns are concatenated unchanged.  Raises
        :class:`~repro.exceptions.DataError` when an appended value falls
        outside this table's domains (the caller must then rebuild with fresh
        domains, since codes would shift).
        """
        missing = [name for name in self._schema.names if name not in columns]
        if missing:
            raise DataError(f"missing columns for attributes {missing}")
        lengths = {name: len(columns[name]) for name in self._schema.names}
        if len(set(lengths.values())) != 1:
            raise DataError(f"columns have inconsistent lengths: {lengths}")
        appended = next(iter(lengths.values()))
        if appended == 0:
            raise DataError("extend requires at least one appended row")
        grown = object.__new__(MicrodataTable)
        grown._schema = self._schema
        grown._domains = dict(self._domains)
        grown._raw = {}
        grown._codes = {}
        grown._n_rows = self._n_rows + appended
        for attribute in self._schema:
            name = attribute.name
            if attribute.is_numeric:
                fresh = np.asarray(columns[name], dtype=np.float64)
            else:
                fresh = np.asarray([str(v) for v in columns[name]], dtype=object)
            codes = self._domains[name].encode(fresh)
            # Columns a codes-backed table never decoded stay lazy in the
            # grown table too; decoded columns concatenate as before.
            if name in self._raw:
                grown._raw[name] = np.concatenate([self._raw[name], fresh])
            grown._codes[name] = np.concatenate([self._codes[name], codes])
        return grown

    def replace_rows(
        self, indices: Sequence[int], columns: Mapping[str, Sequence]
    ) -> "MicrodataTable":
        """A new table with the rows at ``indices`` replaced (domains preserved).

        The in-place correction fast path for streams: only the replacement
        rows are encoded, every other row's raw/code entries are copied
        unchanged.  ``columns`` align positionally with ``indices`` (any
        order; duplicates are rejected).  Raises
        :class:`~repro.exceptions.DataError` when a replacement value falls
        outside this table's domains (the caller must then rebuild with
        fresh domains, since codes would shift).
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            raise DataError("replace_rows requires at least one row index")
        if np.unique(indices).size != indices.size:
            raise DataError("replace_rows indices must be distinct")
        if indices.min() < 0 or indices.max() >= self._n_rows:
            raise DataError(
                f"row index out of range for table of {self._n_rows} rows"
            )
        missing = [name for name in self._schema.names if name not in columns]
        if missing:
            raise DataError(f"missing columns for attributes {missing}")
        lengths = {name: len(columns[name]) for name in self._schema.names}
        if any(length != indices.size for length in lengths.values()):
            raise DataError(
                f"replacement columns must hold {indices.size} rows; got {lengths}"
            )
        replaced = object.__new__(MicrodataTable)
        replaced._schema = self._schema
        replaced._domains = dict(self._domains)
        replaced._raw = {}
        replaced._codes = {}
        replaced._n_rows = self._n_rows
        for attribute in self._schema:
            name = attribute.name
            if attribute.is_numeric:
                fresh = np.asarray(columns[name], dtype=np.float64)
            else:
                fresh = np.asarray([str(v) for v in columns[name]], dtype=object)
            codes = self._domains[name].encode(fresh)
            if name in self._raw:
                raw = self._raw[name].copy()
                raw[indices] = fresh
                replaced._raw[name] = raw
            code_column = self._codes[name].copy()
            code_column[indices] = codes
            replaced._codes[name] = code_column
        return replaced

    def select(self, indices: Sequence[int]) -> "MicrodataTable":
        """A new table containing only the rows in ``indices`` (domains are preserved).

        Selection slices the integer code columns and returns a codes-backed
        table (raw values decode lazily), so selecting from a huge table
        never materialises per-row strings; the result is value-identical to
        slicing the raw columns because codes round-trip exactly.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            raise DataError("select requires at least one row index")
        if indices.size and (indices.min() < 0 or indices.max() >= self._n_rows):
            raise DataError(
                f"row index out of range for table of {self._n_rows} rows"
            )
        codes = {name: self._codes[name][indices] for name in self._schema.names}
        return MicrodataTable.from_codes(self._schema, codes, self._domains)

    def sample(self, n_rows: int, *, rng: np.random.Generator | None = None) -> "MicrodataTable":
        """A uniform random sample of ``n_rows`` rows (without replacement)."""
        if n_rows <= 0:
            raise DataError("sample size must be positive")
        if n_rows > self._n_rows:
            raise DataError(
                f"cannot sample {n_rows} rows from a table of {self._n_rows} rows"
            )
        rng = rng if rng is not None else np.random.default_rng()
        indices = rng.choice(self._n_rows, size=n_rows, replace=False)
        return self.select(np.sort(indices))
