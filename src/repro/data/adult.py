"""Synthetic Adult-like census microdata generator.

The paper's experiments use the UCI *Adult* dataset (Table IV): seven
attributes, with *Occupation* (14 values) as the sensitive attribute and Age,
Workclass, Education, Marital Status, Race and Gender as quasi-identifiers.
That dataset is not available in this offline environment, so this module
synthesises an Adult-like table with the same schema and with realistic
marginals and QI <-> Occupation correlations.

The correlations matter: the whole point of the paper is that an adversary can
exploit relationships between the sensitive attribute and the quasi-identifiers
(e.g. *Armed-Forces* is essentially male-only, *Priv-house-serv* is
overwhelmingly female, *Exec-managerial* and *Prof-specialty* concentrate on
highly-educated adults).  The generator injects exactly this kind of structure
so that background-knowledge attacks, kernel priors, and the (B,t)-privacy
model behave the way they do on the real census extract.

Everything is seeded and deterministic for a given ``(n_rows, seed)`` pair.
"""

from __future__ import annotations

import numpy as np

from repro.data.hierarchy import Taxonomy
from repro.data.schema import Attribute, AttributeKind, AttributeRole, Schema
from repro.data.table import MicrodataTable
from repro.exceptions import DataError

# ---------------------------------------------------------------------------
# Attribute domains (value names follow the UCI Adult dataset).
# ---------------------------------------------------------------------------

WORKCLASS_VALUES = (
    "Private",
    "Self-emp-not-inc",
    "Self-emp-inc",
    "Federal-gov",
    "Local-gov",
    "State-gov",
    "Without-pay",
    "Never-worked",
)

EDUCATION_VALUES = (
    "Preschool",
    "1st-4th",
    "5th-6th",
    "7th-8th",
    "9th",
    "10th",
    "11th",
    "12th",
    "HS-grad",
    "Some-college",
    "Assoc-voc",
    "Assoc-acdm",
    "Bachelors",
    "Masters",
    "Prof-school",
    "Doctorate",
)

MARITAL_VALUES = (
    "Married-civ-spouse",
    "Divorced",
    "Never-married",
    "Separated",
    "Widowed",
    "Married-spouse-absent",
    "Married-AF-spouse",
)

RACE_VALUES = (
    "White",
    "Black",
    "Asian-Pac-Islander",
    "Amer-Indian-Eskimo",
    "Other",
)

GENDER_VALUES = ("Male", "Female")

OCCUPATION_VALUES = (
    "Adm-clerical",
    "Armed-Forces",
    "Craft-repair",
    "Exec-managerial",
    "Farming-fishing",
    "Handlers-cleaners",
    "Machine-op-inspct",
    "Other-service",
    "Priv-house-serv",
    "Prof-specialty",
    "Protective-serv",
    "Sales",
    "Tech-support",
    "Transport-moving",
)

AGE_MIN = 17
AGE_MAX = 90  # 74 distinct integer ages, matching Table IV


def workclass_taxonomy() -> Taxonomy:
    """Height-2 generalization hierarchy for Workclass."""
    return Taxonomy.from_spec(
        "ANY-workclass",
        {
            "Government": ["Federal-gov", "Local-gov", "State-gov"],
            "Self-employed": ["Self-emp-not-inc", "Self-emp-inc"],
            "Private-sector": ["Private"],
            "Not-working": ["Without-pay", "Never-worked"],
        },
    )


def education_taxonomy() -> Taxonomy:
    """Height-3 generalization hierarchy for Education.

    The depth matters: with normalised taxonomy distances (Section II-C), a
    deeper hierarchy produces sibling distances of 1/3 and 2/3, so bandwidths
    in the paper's 0.2-0.5 range actually distinguish adversaries on this
    attribute (a flat hierarchy would make every bandwidth below 1 equivalent).
    """
    return Taxonomy.from_spec(
        "ANY-education",
        {
            "No-diploma": {
                "Elementary": ["Preschool", "1st-4th", "5th-6th", "7th-8th"],
                "Some-high-school": ["9th", "10th", "11th", "12th"],
            },
            "Post-secondary": {
                "Secondary": ["HS-grad", "Some-college"],
                "Associate": ["Assoc-voc", "Assoc-acdm"],
            },
            "Higher-education": {
                "Undergraduate": ["Bachelors"],
                "Graduate": ["Masters", "Prof-school", "Doctorate"],
            },
        },
    )


def marital_taxonomy() -> Taxonomy:
    """Height-3 generalization hierarchy for Marital Status."""
    return Taxonomy.from_spec(
        "ANY-marital",
        {
            "Married": {
                "Civil-marriage": ["Married-civ-spouse"],
                "Other-marriage": ["Married-spouse-absent", "Married-AF-spouse"],
            },
            "Not-married": {
                "Was-married": ["Divorced", "Separated", "Widowed"],
                "Single": ["Never-married"],
            },
        },
    )


def race_taxonomy() -> Taxonomy:
    """Flat (height-1) hierarchy for Race."""
    return Taxonomy.flat("ANY-race", list(RACE_VALUES))


def gender_taxonomy() -> Taxonomy:
    """Flat (height-1) hierarchy for Gender."""
    return Taxonomy.flat("ANY-gender", list(GENDER_VALUES))


def occupation_taxonomy() -> Taxonomy:
    """Height-2 hierarchy for the sensitive attribute Occupation.

    The paper (Section IV-B.2) uses *Occupation* with a domain hierarchy of
    height 2 when kernel-smoothing the sensitive-value distributions.
    """
    return Taxonomy.from_spec(
        "ANY-occupation",
        {
            "White-collar": [
                "Adm-clerical",
                "Exec-managerial",
                "Prof-specialty",
                "Sales",
                "Tech-support",
            ],
            "Blue-collar": [
                "Craft-repair",
                "Farming-fishing",
                "Handlers-cleaners",
                "Machine-op-inspct",
                "Transport-moving",
            ],
            "Service": ["Other-service", "Priv-house-serv", "Protective-serv"],
            "Military": ["Armed-Forces"],
        },
    )


def adult_schema() -> Schema:
    """The seven-attribute schema of Table IV (Occupation is sensitive)."""
    return Schema(
        [
            Attribute("Age", AttributeKind.NUMERIC, AttributeRole.QUASI_IDENTIFIER),
            Attribute(
                "Workclass",
                AttributeKind.CATEGORICAL,
                AttributeRole.QUASI_IDENTIFIER,
                workclass_taxonomy(),
            ),
            Attribute(
                "Education",
                AttributeKind.CATEGORICAL,
                AttributeRole.QUASI_IDENTIFIER,
                education_taxonomy(),
            ),
            Attribute(
                "Marital-status",
                AttributeKind.CATEGORICAL,
                AttributeRole.QUASI_IDENTIFIER,
                marital_taxonomy(),
            ),
            Attribute(
                "Race",
                AttributeKind.CATEGORICAL,
                AttributeRole.QUASI_IDENTIFIER,
                race_taxonomy(),
            ),
            Attribute(
                "Gender",
                AttributeKind.CATEGORICAL,
                AttributeRole.QUASI_IDENTIFIER,
                gender_taxonomy(),
            ),
            Attribute(
                "Occupation",
                AttributeKind.CATEGORICAL,
                AttributeRole.SENSITIVE,
                occupation_taxonomy(),
            ),
        ]
    )


# ---------------------------------------------------------------------------
# Conditional probability tables used by the generator.
# ---------------------------------------------------------------------------

_GENDER_MARGINAL = np.array([0.67, 0.33])
_RACE_MARGINAL = np.array([0.854, 0.096, 0.031, 0.010, 0.009])

# Age groups used for conditioning: young (17-29), middle (30-49), senior (50-90).
_AGE_GROUP_EDGES = (30, 50)

# Education group probabilities per age group
# (No-diploma, Secondary, Associate, Higher-education).
_EDUCATION_GROUP_BY_AGE = np.array(
    [
        [0.28, 0.52, 0.08, 0.12],  # young
        [0.13, 0.50, 0.09, 0.28],  # middle
        [0.20, 0.49, 0.07, 0.24],  # senior
    ]
)

# Within-group education value weights (uniform-ish, skewed toward the most common).
_EDUCATION_WITHIN_GROUP = {
    "No-diploma": np.array([0.01, 0.03, 0.06, 0.11, 0.12, 0.18, 0.27, 0.22]),
    "Secondary": np.array([0.58, 0.42]),
    "Associate": np.array([0.55, 0.45]),
    "Higher-education": np.array([0.62, 0.25, 0.08, 0.05]),
}

_EDUCATION_GROUP_MEMBERS = {
    "No-diploma": EDUCATION_VALUES[:8],
    "Secondary": EDUCATION_VALUES[8:10],
    "Associate": EDUCATION_VALUES[10:12],
    "Higher-education": EDUCATION_VALUES[12:16],
}

# Marital group probabilities per age group (Married, Was-married, Single).
_MARITAL_GROUP_BY_AGE = np.array(
    [
        [0.22, 0.06, 0.72],  # young
        [0.62, 0.18, 0.20],  # middle
        [0.62, 0.28, 0.10],  # senior
    ]
)
_MARITAL_WITHIN_GROUP = {
    "Married": np.array([0.93, 0.05, 0.02]),
    "Was-married": np.array([0.67, 0.15, 0.18]),
    "Single": np.array([1.0]),
}
_MARITAL_GROUP_MEMBERS = {
    "Married": ("Married-civ-spouse", "Married-spouse-absent", "Married-AF-spouse"),
    "Was-married": ("Divorced", "Separated", "Widowed"),
    "Single": ("Never-married",),
}

# Occupation weights conditioned on (gender, education group, age group).
# Rows below are *base* weights per occupation (same order as OCCUPATION_VALUES);
# they are multiplied by gender / education / age modifiers and renormalised.
_OCCUPATION_BASE = np.array(
    [
        9.0,  # Adm-clerical
        0.3,  # Armed-Forces
        10.0,  # Craft-repair
        10.0,  # Exec-managerial
        2.5,  # Farming-fishing
        3.5,  # Handlers-cleaners
        5.0,  # Machine-op-inspct
        8.0,  # Other-service
        0.5,  # Priv-house-serv
        10.0,  # Prof-specialty
        1.6,  # Protective-serv
        9.0,  # Sales
        2.4,  # Tech-support
        4.0,  # Transport-moving
    ]
)

# Gender modifiers (Male, Female) per occupation.  These encode the strong
# correlational knowledge the paper's motivating example relies on.
_OCCUPATION_GENDER_MODIFIER = np.array(
    [
        [0.45, 1.90],  # Adm-clerical: female-dominated
        [1.45, 0.02],  # Armed-Forces: essentially male-only
        [1.55, 0.10],  # Craft-repair: male-dominated
        [1.10, 0.85],  # Exec-managerial
        [1.40, 0.25],  # Farming-fishing
        [1.35, 0.40],  # Handlers-cleaners
        [1.15, 0.75],  # Machine-op-inspct
        [0.70, 1.60],  # Other-service
        [0.06, 2.90],  # Priv-house-serv: essentially female-only
        [0.95, 1.10],  # Prof-specialty
        [1.40, 0.30],  # Protective-serv
        [0.95, 1.10],  # Sales
        [0.90, 1.20],  # Tech-support
        [1.50, 0.12],  # Transport-moving
    ]
)

# Education-group modifiers (No-diploma, Secondary, Associate, Higher) per occupation.
_OCCUPATION_EDUCATION_MODIFIER = np.array(
    [
        [0.60, 1.20, 1.20, 0.80],  # Adm-clerical
        [0.80, 1.20, 1.00, 0.60],  # Armed-Forces
        [1.50, 1.30, 0.90, 0.25],  # Craft-repair
        [0.25, 0.80, 1.00, 2.20],  # Exec-managerial
        [2.00, 1.00, 0.50, 0.20],  # Farming-fishing
        [2.20, 1.10, 0.40, 0.10],  # Handlers-cleaners
        [1.90, 1.20, 0.60, 0.15],  # Machine-op-inspct
        [1.70, 1.10, 0.70, 0.35],  # Other-service
        [2.40, 0.80, 0.30, 0.08],  # Priv-house-serv
        [0.10, 0.45, 1.00, 3.00],  # Prof-specialty
        [0.80, 1.30, 1.10, 0.60],  # Protective-serv
        [0.80, 1.10, 1.00, 1.00],  # Sales
        [0.30, 0.90, 1.60, 1.40],  # Tech-support
        [1.60, 1.30, 0.70, 0.15],  # Transport-moving
    ]
)

# Age-group modifiers (young, middle, senior) per occupation.
_OCCUPATION_AGE_MODIFIER = np.array(
    [
        [1.20, 1.00, 0.90],  # Adm-clerical
        [1.80, 0.80, 0.20],  # Armed-Forces
        [0.90, 1.10, 1.00],  # Craft-repair
        [0.55, 1.25, 1.25],  # Exec-managerial
        [0.90, 1.00, 1.20],  # Farming-fishing
        [1.50, 0.90, 0.70],  # Handlers-cleaners
        [1.00, 1.05, 0.95],  # Machine-op-inspct
        [1.40, 0.90, 0.85],  # Other-service
        [0.90, 0.90, 1.40],  # Priv-house-serv
        [0.75, 1.15, 1.15],  # Prof-specialty
        [1.00, 1.15, 0.80],  # Protective-serv
        [1.25, 0.95, 0.95],  # Sales
        [1.10, 1.05, 0.80],  # Tech-support
        [0.85, 1.10, 1.05],  # Transport-moving
    ]
)

# Workclass weights conditioned on occupation group (White/Blue-collar, Service, Military).
_WORKCLASS_BY_OCCUPATION_GROUP = {
    "White-collar": np.array([0.72, 0.07, 0.05, 0.04, 0.05, 0.05, 0.01, 0.01]),
    "Blue-collar": np.array([0.80, 0.08, 0.03, 0.02, 0.03, 0.02, 0.01, 0.01]),
    "Service": np.array([0.62, 0.05, 0.02, 0.05, 0.15, 0.08, 0.02, 0.01]),
    "Military": np.array([0.02, 0.01, 0.01, 0.90, 0.03, 0.02, 0.005, 0.005]),
}


def _age_group(ages: np.ndarray) -> np.ndarray:
    """Map integer ages to age-group indices {0: young, 1: middle, 2: senior}."""
    groups = np.zeros(ages.shape, dtype=np.int64)
    groups[ages >= _AGE_GROUP_EDGES[0]] = 1
    groups[ages >= _AGE_GROUP_EDGES[1]] = 2
    return groups


def _sample_categorical_rows(probabilities: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Sample one category per row from a row-stochastic probability matrix."""
    cumulative = np.cumsum(probabilities, axis=1)
    cumulative /= cumulative[:, -1:]
    draws = rng.random(probabilities.shape[0])[:, None]
    return (draws > cumulative).sum(axis=1)


def _sample_ages(n_rows: int, rng: np.random.Generator) -> np.ndarray:
    """Sample integer ages in [AGE_MIN, AGE_MAX] from a census-like skewed mixture."""
    component = rng.random(n_rows)
    ages = np.empty(n_rows, dtype=np.float64)
    young = component < 0.35
    middle = (component >= 0.35) & (component < 0.80)
    senior = component >= 0.80
    ages[young] = rng.normal(26.0, 6.0, young.sum())
    ages[middle] = rng.normal(41.0, 8.0, middle.sum())
    ages[senior] = rng.normal(60.0, 10.0, senior.sum())
    return np.clip(np.round(ages), AGE_MIN, AGE_MAX).astype(np.int64)


def generate_adult(n_rows: int = 30_000, *, seed: int = 2009) -> MicrodataTable:
    """Generate a synthetic Adult-like :class:`MicrodataTable`.

    Parameters
    ----------
    n_rows:
        Number of tuples to generate (the paper uses roughly 30 000 valid
        tuples).
    seed:
        Random seed; the same ``(n_rows, seed)`` pair always produces the same
        table.

    Returns
    -------
    MicrodataTable
        A table with the schema of :func:`adult_schema`, where *Occupation*
        correlates with Gender, Education and Age in a way that mirrors the
        correlational background knowledge discussed in the paper.
    """
    if n_rows <= 0:
        raise DataError("n_rows must be positive")
    rng = np.random.default_rng(seed)
    schema = adult_schema()

    ages = _sample_ages(n_rows, rng)
    age_groups = _age_group(ages)

    gender_codes = _sample_categorical_rows(
        np.tile(_GENDER_MARGINAL, (n_rows, 1)), rng
    )
    race_codes = _sample_categorical_rows(np.tile(_RACE_MARGINAL, (n_rows, 1)), rng)

    # Education: pick a group conditioned on age, then a value within the group.
    education_group_probs = _EDUCATION_GROUP_BY_AGE[age_groups]
    education_groups = _sample_categorical_rows(education_group_probs, rng)
    group_names = list(_EDUCATION_GROUP_MEMBERS)
    education_values = np.empty(n_rows, dtype=object)
    for group_index, group_name in enumerate(group_names):
        mask = education_groups == group_index
        if not mask.any():
            continue
        members = _EDUCATION_GROUP_MEMBERS[group_name]
        weights = _EDUCATION_WITHIN_GROUP[group_name]
        codes = _sample_categorical_rows(np.tile(weights, (int(mask.sum()), 1)), rng)
        education_values[mask] = np.asarray(members, dtype=object)[codes]

    # Marital status: group conditioned on age, value within group.
    marital_group_probs = _MARITAL_GROUP_BY_AGE[age_groups]
    marital_groups = _sample_categorical_rows(marital_group_probs, rng)
    marital_values = np.empty(n_rows, dtype=object)
    for group_index, group_name in enumerate(_MARITAL_GROUP_MEMBERS):
        mask = marital_groups == group_index
        if not mask.any():
            continue
        members = _MARITAL_GROUP_MEMBERS[group_name]
        weights = _MARITAL_WITHIN_GROUP[group_name]
        codes = _sample_categorical_rows(np.tile(weights, (int(mask.sum()), 1)), rng)
        marital_values[mask] = np.asarray(members, dtype=object)[codes]

    # Occupation (sensitive): base weights x gender x education group x age group.
    occupation_weights = (
        _OCCUPATION_BASE[None, :]
        * _OCCUPATION_GENDER_MODIFIER[:, gender_codes].T
        * _OCCUPATION_EDUCATION_MODIFIER[:, education_groups].T
        * _OCCUPATION_AGE_MODIFIER[:, age_groups].T
    )
    occupation_codes = _sample_categorical_rows(occupation_weights, rng)
    occupation_values = np.asarray(OCCUPATION_VALUES, dtype=object)[occupation_codes]

    # Workclass: conditioned on the occupation's top-level group.
    occupation_tax = occupation_taxonomy()
    occupation_group_of = {
        leaf: occupation_tax.parent(leaf) for leaf in occupation_tax.leaves
    }
    workclass_values = np.empty(n_rows, dtype=object)
    occupation_group_labels = np.asarray(
        [occupation_group_of[value] for value in occupation_values.tolist()], dtype=object
    )
    for group_name, weights in _WORKCLASS_BY_OCCUPATION_GROUP.items():
        mask = occupation_group_labels == group_name
        if not mask.any():
            continue
        codes = _sample_categorical_rows(np.tile(weights, (int(mask.sum()), 1)), rng)
        workclass_values[mask] = np.asarray(WORKCLASS_VALUES, dtype=object)[codes]

    columns = {
        "Age": ages,
        "Workclass": workclass_values,
        "Education": education_values,
        "Marital-status": marital_values,
        "Race": np.asarray(RACE_VALUES, dtype=object)[race_codes],
        "Gender": np.asarray(GENDER_VALUES, dtype=object)[gender_codes],
        "Occupation": occupation_values,
    }
    return MicrodataTable(schema, columns)
