"""Association-rule background knowledge (the Injector approach, paper ref [7]).

The paper's earlier work (*Injector*, ICDE 2008) models background knowledge as
**negative association rules** mined from the data: rules of the form
"tuples with QI value ``v`` never take sensitive value ``s``" that hold with
100% confidence (e.g. *Gender = Male  =>  Occupation != Priv-house-serv* when
no male in the table holds that occupation).  Section II of the ICDE 2009
paper argues that the kernel-estimation framework *subsumes* this kind of
knowledge: as the bandwidth shrinks, the kernel prior assigns (near-)zero
probability to exactly the sensitive values excluded by such rules.

This module mines both negative and positive association rules between single
QI attribute values and sensitive values, so that tests and examples can
demonstrate the subsumption claim quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.table import MicrodataTable
from repro.exceptions import KnowledgeError


@dataclass(frozen=True)
class AssociationRule:
    """A single-antecedent association rule between a QI value and a sensitive value.

    ``negative=True`` encodes "``attribute = value`` implies sensitive != ``sensitive_value``"
    and ``negative=False`` encodes the positive form "... implies sensitive = ``sensitive_value``".
    """

    attribute: str
    value: object
    sensitive_value: object
    support: int
    confidence: float
    negative: bool

    def __str__(self) -> str:
        relation = "!=" if self.negative else "="
        return (
            f"{self.attribute}={self.value} => S {relation} {self.sensitive_value} "
            f"(support={self.support}, confidence={self.confidence:.3f})"
        )


def mine_negative_rules(
    table: MicrodataTable,
    *,
    min_support: int = 20,
    min_confidence: float = 1.0,
) -> list[AssociationRule]:
    """Mine negative association rules ``A=v => S != s``.

    Parameters
    ----------
    table:
        The microdata table to mine.
    min_support:
        Minimum number of tuples with ``A = v`` for a rule to be reported (so
        that "never observed together" is statistically meaningful).
    min_confidence:
        Minimum confidence of the negative rule; ``1.0`` (the Injector
        setting) keeps only values that *never* co-occur.

    Returns
    -------
    list[AssociationRule]
        All rules meeting the thresholds, ordered by attribute then value.
    """
    if min_support <= 0:
        raise KnowledgeError("min_support must be positive")
    if not 0.0 < min_confidence <= 1.0:
        raise KnowledgeError("min_confidence must be in (0, 1]")
    rules: list[AssociationRule] = []
    sensitive_domain = table.sensitive_domain()
    sensitive_codes = table.sensitive_codes()
    m = sensitive_domain.size
    for name in table.quasi_identifier_names:
        domain = table.domain(name)
        codes = table.codes(name)
        for value_code in range(domain.size):
            mask = codes == value_code
            support = int(mask.sum())
            if support < min_support:
                continue
            counts = np.bincount(sensitive_codes[mask], minlength=m)
            for sensitive_code in range(m):
                confidence = 1.0 - counts[sensitive_code] / support
                if confidence >= min_confidence:
                    rules.append(
                        AssociationRule(
                            attribute=name,
                            value=domain.values[value_code],
                            sensitive_value=sensitive_domain.values[sensitive_code],
                            support=support,
                            confidence=float(confidence),
                            negative=True,
                        )
                    )
    return rules


def mine_positive_rules(
    table: MicrodataTable,
    *,
    min_support: int = 20,
    min_confidence: float = 0.5,
) -> list[AssociationRule]:
    """Mine positive association rules ``A=v => S = s`` with confidence >= ``min_confidence``."""
    if min_support <= 0:
        raise KnowledgeError("min_support must be positive")
    if not 0.0 < min_confidence <= 1.0:
        raise KnowledgeError("min_confidence must be in (0, 1]")
    rules: list[AssociationRule] = []
    sensitive_domain = table.sensitive_domain()
    sensitive_codes = table.sensitive_codes()
    m = sensitive_domain.size
    for name in table.quasi_identifier_names:
        domain = table.domain(name)
        codes = table.codes(name)
        for value_code in range(domain.size):
            mask = codes == value_code
            support = int(mask.sum())
            if support < min_support:
                continue
            counts = np.bincount(sensitive_codes[mask], minlength=m)
            for sensitive_code in range(m):
                confidence = counts[sensitive_code] / support
                if confidence >= min_confidence:
                    rules.append(
                        AssociationRule(
                            attribute=name,
                            value=domain.values[value_code],
                            sensitive_value=sensitive_domain.values[sensitive_code],
                            support=support,
                            confidence=float(confidence),
                            negative=False,
                        )
                    )
    return rules


def rule_violation_mass(
    table: MicrodataTable,
    prior_matrix: np.ndarray,
    rules: list[AssociationRule],
) -> float:
    """Average prior probability mass a belief assigns to *excluded* sensitive values.

    For every negative rule ``A=v => S != s`` and every tuple with ``A = v``,
    a prior that truly incorporates the rule should give sensitive value ``s``
    probability 0.  This function returns the mean of those probabilities
    under ``prior_matrix``; a value near zero means the prior subsumes the
    mined negative rules (Section II-D's subsumption claim).
    """
    prior_matrix = np.asarray(prior_matrix, dtype=np.float64)
    if prior_matrix.shape[0] != table.n_rows:
        raise KnowledgeError("prior matrix row count does not match the table")
    negative_rules = [rule for rule in rules if rule.negative]
    if not negative_rules:
        return 0.0
    sensitive_domain = table.sensitive_domain()
    total = 0.0
    count = 0
    for rule in negative_rules:
        codes = table.codes(rule.attribute)
        value_code = table.domain(rule.attribute).code_of(rule.value)
        sensitive_code = sensitive_domain.code_of(rule.sensitive_value)
        mask = codes == value_code
        if not mask.any():
            continue
        total += float(prior_matrix[mask, sensitive_code].sum())
        count += int(mask.sum())
    return total / count if count else 0.0
