"""Estimating the adversary's prior belief function (Sections II-B and II-C).

The adversary's prior belief is a function ``Ppri : D[QI] -> Sigma`` mapping
every quasi-identifier combination to a probability distribution over the
sensitive domain.  The paper estimates it from the data itself with a
Nadaraya-Watson kernel regression:

.. math::

    \\hat P_{pri}(q) = \\frac{\\sum_{t_j \\in T} P(t_j) \\prod_i K_i(d_i(q_i, t_j[A_i]))}
                            {\\sum_{t_j \\in T} \\prod_i K_i(d_i(q_i, t_j[A_i]))}

where ``P(t_j)`` is the one-hot distribution of tuple ``t_j``'s sensitive
value and ``d_i`` is the normalised attribute distance of Section II-C.

:class:`KernelPriorEstimator` implements this estimator.  Distances are
precomputed per attribute as ``|D_i| x |D_i|`` matrices, so evaluating the
prior for every tuple of an ``n``-row table costs ``O(n^2 d)`` arithmetic but
is fully vectorised (batched numpy), which keeps 10K-30K row tables practical.

Three baseline adversaries from Section II-D are also provided:

* :func:`uniform_prior` - the "ignorant" adversary assumed by l-diversity
  (NOT consistent with the data; included for comparison only),
* :func:`overall_prior` - the t-closeness adversary whose prior is the overall
  sensitive distribution for every tuple,
* :func:`mle_prior` - the maximum-likelihood estimator that conditions on the
  exact QI combination (the limit of small bandwidths).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.data.distance import attribute_distance_matrix
from repro.data.table import MicrodataTable
from repro.exceptions import KnowledgeError
from repro.knowledge.bandwidth import Bandwidth
from repro.knowledge.kernels import get_kernel

_DEFAULT_BATCH_SIZE = 256


@dataclass(frozen=True)
class PriorBeliefs:
    """Per-tuple prior beliefs of one adversary over one table.

    Attributes
    ----------
    matrix:
        ``(n_rows, m)`` row-stochastic matrix; row ``j`` is the adversary's
        prior distribution over the sensitive domain for tuple ``t_j``.
    sensitive_values:
        The sensitive domain ``D[S]`` in code order (length ``m``).
    description:
        Human-readable description of the adversary (e.g. ``"kernel b=0.3"``).
    """

    matrix: np.ndarray
    sensitive_values: tuple = field(default_factory=tuple)
    description: str = ""

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise KnowledgeError("prior belief matrix must be 2-dimensional")
        if np.any(matrix < -1e-12):
            raise KnowledgeError("prior belief matrix must be non-negative")
        row_sums = matrix.sum(axis=1)
        if not np.allclose(row_sums, 1.0, atol=1e-8):
            raise KnowledgeError("every prior belief row must sum to 1")
        object.__setattr__(self, "matrix", matrix)

    @property
    def n_rows(self) -> int:
        """Number of tuples covered by these beliefs."""
        return int(self.matrix.shape[0])

    @property
    def n_sensitive_values(self) -> int:
        """Size ``m`` of the sensitive domain."""
        return int(self.matrix.shape[1])

    def for_tuple(self, index: int) -> np.ndarray:
        """Prior distribution of tuple ``index``."""
        return self.matrix[index]

    def for_group(self, indices: np.ndarray) -> np.ndarray:
        """Prior distributions (rows) for a group of tuple indices."""
        return self.matrix[np.asarray(indices, dtype=np.int64)]


class KernelPriorEstimator:
    """Nadaraya-Watson product-kernel estimator of the prior belief function.

    Parameters
    ----------
    bandwidth:
        Per-attribute :class:`~repro.knowledge.bandwidth.Bandwidth`.  It must
        cover every quasi-identifier of the table passed to :meth:`fit`.
    kernel:
        Name of the kernel function (default ``"epanechnikov"``, as in the
        paper).
    batch_size:
        Number of query rows evaluated per vectorised batch.  Purely a
        speed/memory trade-off; results do not depend on it.
    distance_matrices:
        Optional mapping from attribute name to its precomputed ``|D_i| x
        |D_i|`` normalised distance matrix.  The matrices depend only on the
        attribute domains - not on the bandwidth - so callers fitting several
        estimators on one table (e.g. a session sweeping over ``b`` values)
        can compute them once and share them; attributes missing from the
        mapping are computed as usual.
    """

    def __init__(
        self,
        bandwidth: Bandwidth,
        *,
        kernel: str = "epanechnikov",
        batch_size: int = _DEFAULT_BATCH_SIZE,
        distance_matrices: dict[str, np.ndarray] | None = None,
    ):
        if batch_size <= 0:
            raise KnowledgeError("batch_size must be positive")
        self.bandwidth = bandwidth
        self.kernel_name = kernel
        self._kernel = get_kernel(kernel)
        self.batch_size = int(batch_size)
        self._distance_matrices = dict(distance_matrices) if distance_matrices else {}
        self._table: MicrodataTable | None = None
        self._weight_matrices: list[np.ndarray] = []
        self._qi_codes: np.ndarray | None = None
        self._sensitive_codes: np.ndarray | None = None
        self._one_hot: np.ndarray | None = None
        self._overall: np.ndarray | None = None

    # -- fitting --------------------------------------------------------------------
    def fit(self, table: MicrodataTable) -> "KernelPriorEstimator":
        """Precompute per-attribute kernel weight matrices for ``table``."""
        qi_names = table.quasi_identifier_names
        missing = [name for name in qi_names if name not in self.bandwidth]
        if missing:
            raise KnowledgeError(
                f"bandwidth does not cover quasi-identifier attributes {missing}"
            )
        self._table = table
        self._weight_matrices = []
        for name in qi_names:
            distances = self._distance_matrices.get(name)
            if distances is None:
                distances = attribute_distance_matrix(table.domain(name))
            weights = self._kernel(distances, self.bandwidth[name])
            self._weight_matrices.append(np.asarray(weights, dtype=np.float64))
        self._qi_codes = table.qi_code_matrix()
        self._sensitive_codes = table.sensitive_codes()
        m = table.sensitive_domain().size
        one_hot = np.zeros((table.n_rows, m), dtype=np.float64)
        one_hot[np.arange(table.n_rows), self._sensitive_codes] = 1.0
        self._one_hot = one_hot
        self._overall = table.sensitive_distribution()
        return self

    def _require_fitted(self) -> MicrodataTable:
        if self._table is None:
            raise KnowledgeError("estimator is not fitted; call fit(table) first")
        return self._table

    # -- estimation -----------------------------------------------------------------
    def prior_for_codes(self, query_codes: np.ndarray) -> np.ndarray:
        """Prior distributions for query rows given as QI *code* combinations.

        Parameters
        ----------
        query_codes:
            ``(q, d)`` integer matrix of attribute codes (one row per query
            point), in the same code space as the fitted table.

        Returns
        -------
        numpy.ndarray
            ``(q, m)`` row-stochastic matrix of prior beliefs.  Queries whose
            kernel weights are all zero (possible with compact-support kernels
            far away from any data) fall back to the overall sensitive
            distribution, which is the least-informative consistent belief.
        """
        table = self._require_fitted()
        query_codes = np.atleast_2d(np.asarray(query_codes, dtype=np.int64))
        n_queries, n_attributes = query_codes.shape
        if n_attributes != len(self._weight_matrices):
            raise KnowledgeError(
                f"query has {n_attributes} attributes but the estimator was fitted on "
                f"{len(self._weight_matrices)}"
            )
        m = table.sensitive_domain().size
        data_codes = self._qi_codes
        result = np.empty((n_queries, m), dtype=np.float64)
        for start in range(0, n_queries, self.batch_size):
            stop = min(start + self.batch_size, n_queries)
            batch = query_codes[start:stop]
            weights = np.ones((stop - start, data_codes.shape[0]), dtype=np.float64)
            for attribute_index, weight_matrix in enumerate(self._weight_matrices):
                weights *= weight_matrix[batch[:, attribute_index]][:, data_codes[:, attribute_index]]
            numerators = weights @ self._one_hot
            denominators = weights.sum(axis=1)
            degenerate = denominators <= 0.0
            safe = np.where(degenerate, 1.0, denominators)
            block = numerators / safe[:, None]
            if degenerate.any():
                block[degenerate] = self._overall
            result[start:stop] = block
        return result

    def prior_for_table(self, table: MicrodataTable | None = None) -> PriorBeliefs:
        """Prior beliefs for every tuple of ``table`` (default: the fitted table)."""
        fitted = self._require_fitted()
        target = table if table is not None else fitted
        if target is not fitted:
            # Re-encode the target's QI values against the fitted table's domains.
            codes = np.column_stack(
                [
                    fitted.domain(name).encode(target.column(name).tolist())
                    for name in fitted.quasi_identifier_names
                ]
            )
        else:
            codes = self._qi_codes
        unique_codes, inverse = np.unique(codes, axis=0, return_inverse=True)
        unique_priors = self.prior_for_codes(unique_codes)
        matrix = unique_priors[inverse]
        return PriorBeliefs(
            matrix=matrix,
            sensitive_values=tuple(fitted.sensitive_domain().values.tolist()),
            description=f"kernel={self.kernel_name}, {self.bandwidth.describe()}",
        )


class BatchedKernelPriorEstimator:
    """Kernel priors for *many* bandwidths in one pass (the skyline's estimator).

    Auditing a release against a skyline ``{(B_1, t_1), ..., (B_p, t_p)}``
    needs one prior belief function per adversary.  Fitting a separate
    :class:`KernelPriorEstimator` per bandwidth repeats the ``O(n^2 d)`` weight
    products ``p`` times, even though everything except the kernel evaluation
    is bandwidth-independent.  This estimator batches the bandwidth axis:

    * **shared work** (done once in :meth:`fit`): attribute distance matrices,
      the de-duplication of QI combinations, and - on schemas where one block
      of attributes has a small observed joint domain - a count tensor
      ``M[a, r, s]`` = number of tuples with solo-attribute code ``a``, joint
      rest-combination ``r`` and sensitive value ``s``;
    * **per-bandwidth work**: tiny per-attribute kernel matrices plus two
      small matrix products contracting ``M`` (first over the solo attribute,
      then - batched per solo value - over the rest combinations).

    The factored contraction is algebraically identical to the flat
    Nadaraya-Watson sum, so results match :class:`KernelPriorEstimator` to
    floating-point round-off.  When the factorisation would not pay off (a
    single quasi-identifier, or too many observed joint combinations for the
    ``max_cells`` budget) it falls back to one flat estimator per bandwidth
    that still shares the distance matrices.

    Append-only streams can grow a fitted estimator with :meth:`append_rows`:
    the count tensor is additive in rows, so the priors of the extended table
    are produced by folding the appended rows' counts into the factored state
    instead of re-sweeping all ``n`` rows.  With ``incremental=True`` the
    per-bandwidth contraction artefacts (rest-combination joint weights, the
    contracted tensor and the per-query numerators) are cached between calls
    and only the queries whose kernel neighbourhood contains an appended row
    are recontracted - the compact support of the paper's kernels makes every
    other query's prior provably unchanged.

    Parameters
    ----------
    kernel:
        Kernel function name (default ``"epanechnikov"``, as in the paper).
    batch_size:
        Query rows per vectorised batch for the flat fallback path.
    distance_matrices:
        Optional precomputed per-attribute distance matrices to share.
    max_cells:
        Memory budget (in float64 cells) for the factored path's count tensor
        and joint weight matrix; above it the estimator falls back to the flat
        path.  Purely a speed/memory trade-off.
    incremental:
        Cache the per-bandwidth contraction state so :meth:`append_rows`
        updates it in place (costs memory proportional to the joint weight
        matrix per distinct bandwidth; off by default).
    """

    def __init__(
        self,
        *,
        kernel: str = "epanechnikov",
        batch_size: int = _DEFAULT_BATCH_SIZE,
        distance_matrices: dict[str, np.ndarray] | None = None,
        max_cells: int = 64_000_000,
        incremental: bool = False,
    ):
        if batch_size <= 0:
            raise KnowledgeError("batch_size must be positive")
        if max_cells < 0:
            raise KnowledgeError("max_cells must be non-negative")
        self.kernel_name = kernel
        self._kernel = get_kernel(kernel)
        self.batch_size = int(batch_size)
        self.max_cells = int(max_cells)
        self.incremental = bool(incremental)
        self._distance_matrices = dict(distance_matrices) if distance_matrices else {}
        self._table: MicrodataTable | None = None
        self.mode: str | None = None
        # Factored-path state (see fit()).  Rest combinations live in *slot*
        # order: slots 0..n-1 are assigned in lexicographic order at fit time
        # and appended combinations take the next free slots, so growing the
        # state never reshuffles the (large) per-combination arrays.
        self._solo_index: int = 0
        self._rest_indices: list[int] = []
        self._rest_radix: np.ndarray | None = None
        self._rest_total: int = 0
        self._n_combos: int = 0
        self._rest_combos: np.ndarray | None = None  # (capacity, d-1), slot order
        self._sorted_keys: np.ndarray | None = None  # sorted rest keys
        self._slot_of_sorted: np.ndarray | None = None  # slot of each sorted key
        self._count_storage: np.ndarray | None = None  # (solo, capacity, m)
        self._solo_of_row: np.ndarray | None = None
        self._rest_key_of_row: np.ndarray | None = None
        self._pair_keys: np.ndarray | None = None
        self._query_solo: np.ndarray | None = None
        self._query_rest: np.ndarray | None = None  # slot ids
        self._query_inverse: np.ndarray | None = None
        self._solo_bounds: np.ndarray | None = None
        self._overall: np.ndarray | None = None
        # Per-bandwidth contraction caches (incremental mode only), keyed by
        # Bandwidth.items(): {"bandwidth", "joint", "contracted", "numerators"}
        # with joint/contracted allocated at the shared combo capacity.
        self._contractions: dict[tuple, dict] = {}

    @property
    def _count_tensor(self) -> np.ndarray:
        """Active ``(solo, n_combos, m)`` view of the count storage."""
        return self._count_storage[:, : self._n_combos, :]

    def _capacity(self, n_combos: int) -> int:
        """Combo capacity: headroom so appends rarely reallocate (incremental only)."""
        if not self.incremental:
            return n_combos
        return n_combos + max(128, n_combos // 4)

    # -- fitting --------------------------------------------------------------------
    def fit(self, table: MicrodataTable) -> "BatchedKernelPriorEstimator":
        """Precompute every bandwidth-independent artefact for ``table``."""
        qi_names = list(table.quasi_identifier_names)
        for name in qi_names:
            cached = self._distance_matrices.get(name)
            if cached is None or cached.shape[0] != table.domain(name).size:
                # Also replaces matrices cached against an outgrown domain
                # (refitting after a stream append introduced new values).
                self._distance_matrices[name] = attribute_distance_matrix(table.domain(name))
        self._table = table
        self._overall = table.sensitive_distribution()
        self._contractions = {}
        codes = table.qi_code_matrix()
        sensitive = table.sensitive_codes()
        m = table.sensitive_domain().size

        sizes = [self._distance_matrices[name].shape[0] for name in qi_names]
        if len(qi_names) < 2:
            self.mode = "flat"
            return self
        solo = int(np.argmax(sizes))
        rest = [i for i in range(len(qi_names)) if i != solo]
        rest_combos, rest_of_row = np.unique(codes[:, rest], axis=0, return_inverse=True)
        n_combos = rest_combos.shape[0]
        solo_size = sizes[solo]
        if solo_size * n_combos * m + n_combos * n_combos > self.max_cells:
            self.mode = "flat"
            return self
        # Mixed-radix keys over the *domain* sizes identify rest combinations
        # and (solo, rest) pairs stably across appends; their sorted order is
        # the lexicographic code order np.unique(axis=0) produces.  Schemas too
        # wide for an int64 key cannot be grown in place (they refit instead).
        rest_sizes = np.asarray([sizes[i] for i in rest], dtype=np.float64)
        if rest_sizes.prod() * solo_size >= float(2**62):
            self.mode = "flat"
            return self
        self.mode = "factored"
        self._solo_index = solo
        self._rest_indices = rest
        radix = np.ones(len(rest), dtype=np.int64)
        for position in range(len(rest) - 2, -1, -1):
            radix[position] = radix[position + 1] * int(sizes[rest[position + 1]])
        self._rest_radix = radix
        self._rest_total = int(radix[0] * sizes[rest[0]])
        self._n_combos = n_combos
        capacity = self._capacity(n_combos)
        self._rest_combos = np.zeros((capacity, len(rest)), dtype=rest_combos.dtype)
        self._rest_combos[:n_combos] = rest_combos
        self._sorted_keys = rest_combos.astype(np.int64) @ radix
        self._slot_of_sorted = np.arange(n_combos, dtype=np.int64)
        self._solo_of_row = codes[:, solo].astype(np.int64)
        self._rest_key_of_row = self._sorted_keys[rest_of_row]

        # M[a, r, s]: tuple counts per (solo code, rest combination, sensitive value).
        flat = (self._solo_of_row * n_combos + rest_of_row) * m + sensitive
        self._count_storage = np.zeros((solo_size, capacity, m), dtype=np.float64)
        self._count_storage[:, :n_combos, :] = (
            np.bincount(flat, minlength=solo_size * n_combos * m)
            .reshape(solo_size, n_combos, m)
            .astype(np.float64)
        )
        self._rebuild_query_index()
        return self

    def _rebuild_query_index(self) -> None:
        """Derive the unique (solo, rest) query structures from the per-row keys.

        Pair keys ascend with (solo code, rest key), so the unique array is
        already grouped by solo code - exactly the layout the per-bandwidth
        contraction wants for its per-solo matmuls.
        """
        solo_size = self._count_storage.shape[0]
        pair_key = self._solo_of_row * self._rest_total + self._rest_key_of_row
        self._pair_keys, self._query_inverse = np.unique(pair_key, return_inverse=True)
        self._query_solo = self._pair_keys // self._rest_total
        self._query_rest = self._slot_of_sorted[
            np.searchsorted(self._sorted_keys, self._pair_keys % self._rest_total)
        ]
        self._solo_bounds = np.searchsorted(self._query_solo, np.arange(solo_size + 1))

    def _same_domains(self, table: MicrodataTable) -> bool:
        fitted = self._table
        if tuple(table.quasi_identifier_names) != tuple(fitted.quasi_identifier_names):
            return False
        names = list(table.quasi_identifier_names) + [table.sensitive_name]
        return all(
            np.array_equal(table.domain(name).values, fitted.domain(name).values)
            for name in names
        )

    def append_rows(self, table: MicrodataTable) -> str:
        """Grow the fitted state to ``table`` (the previous table plus appended rows).

        ``table`` must extend the fitted table: its first ``n`` rows are the
        fitted rows and every attribute keeps its domain (append-only streams
        with stable domains).  The appended rows' counts are folded into the
        count tensor - and, in ``incremental`` mode, into every cached
        per-bandwidth contraction - so the next :meth:`prior_for_table` only
        recontracts queries whose kernel neighbourhood actually changed.

        Returns ``"incremental"`` when the factored state was updated in
        place, or ``"refit"`` when the estimator had to fall back to a full
        :meth:`fit` (flat mode, changed domains, or a blown cell budget).
        """
        fitted = self._require_fitted()
        n_previous = fitted.n_rows
        if table.n_rows < n_previous:
            raise KnowledgeError(
                f"append_rows expects a grown table; got {table.n_rows} rows after {n_previous}"
            )
        if self.mode != "factored" or not self._same_domains(table):
            self.fit(table)
            return "refit"
        if table.n_rows == n_previous:
            self._table = table
            return "incremental"

        m = table.sensitive_domain().size
        codes_new = table.qi_code_matrix()[n_previous:]
        sensitive_new = table.sensitive_codes()[n_previous:]
        delta_solo = codes_new[:, self._solo_index].astype(np.int64)
        delta_rest_key = codes_new[:, self._rest_indices].astype(np.int64) @ self._rest_radix

        # Assign fresh slots to rest combinations first seen in this batch.
        new_keys = np.setdiff1d(delta_rest_key, self._sorted_keys)
        if new_keys.size:
            solo_size = self._count_storage.shape[0]
            n_after = self._n_combos + new_keys.size
            if solo_size * n_after * m + n_after * n_after > self.max_cells:
                self.fit(table)
                return "refit"
            first_seen = np.searchsorted(np.sort(delta_rest_key), new_keys)
            order = np.argsort(delta_rest_key, kind="stable")
            new_combos = codes_new[order[first_seen]][:, self._rest_indices]
            self._grow_combos(new_keys, new_combos)

        delta_rest = self._slot_of_sorted[
            np.searchsorted(self._sorted_keys, delta_rest_key)
        ]
        n_combos = self._n_combos
        solo_size = self._count_storage.shape[0]
        # Count the batch only over the touched rest slots - O(batch), not
        # O(count tensor) - and scatter the block into the storage.
        rest_touched = np.unique(delta_rest)
        touched_position = np.searchsorted(rest_touched, delta_rest)
        flat = (
            delta_solo * rest_touched.size + touched_position
        ) * m + sensitive_new.astype(np.int64)
        block = (
            np.bincount(flat, minlength=solo_size * rest_touched.size * m)
            .reshape(solo_size, rest_touched.size, m)
            .astype(np.float64)
        )
        self._count_storage[:, rest_touched, :] += block
        cells = np.unique(delta_solo * n_combos + delta_rest)
        cell_solo = cells // n_combos
        cell_rest = cells % n_combos

        self._table = table
        self._overall = table.sensitive_distribution()
        self._solo_of_row = np.concatenate([self._solo_of_row, delta_solo])
        self._rest_key_of_row = np.concatenate([self._rest_key_of_row, delta_rest_key])
        previous_pairs = self._pair_keys
        self._rebuild_query_index()
        for cache in self._contractions.values():
            self._update_cache(
                cache, block, rest_touched, cell_solo, cell_rest, previous_pairs
            )
        return "incremental"

    def _bandwidth_weights(self, bandwidth: Bandwidth, name: str) -> np.ndarray:
        return self._kernel(self._distance_matrices[name], bandwidth[name])

    def _grow_combos(self, new_keys: np.ndarray, new_combos: np.ndarray) -> None:
        """Assign slots to new rest combinations, reallocating storage if full."""
        n_old = self._n_combos
        n_after = n_old + new_keys.size
        capacity = self._rest_combos.shape[0]
        if n_after > capacity:
            capacity = self._capacity(n_after)
            combos = np.zeros((capacity, self._rest_combos.shape[1]), self._rest_combos.dtype)
            combos[:n_old] = self._rest_combos[:n_old]
            self._rest_combos = combos
            storage = np.zeros(
                (self._count_storage.shape[0], capacity, self._count_storage.shape[2])
            )
            storage[:, :n_old, :] = self._count_storage[:, :n_old, :]
            self._count_storage = storage
            for cache in self._contractions.values():
                joint = np.zeros((capacity, capacity), dtype=np.float64)
                joint[:n_old, :n_old] = cache["joint_storage"][:n_old, :n_old]
                cache["joint_storage"] = joint
                contracted = np.zeros_like(storage)
                contracted[:, :n_old, :] = cache["contracted_storage"][:, :n_old, :]
                cache["contracted_storage"] = contracted
        slots = np.arange(n_old, n_after, dtype=np.int64)
        self._rest_combos[slots] = new_combos
        positions = np.searchsorted(self._sorted_keys, new_keys)
        self._sorted_keys = np.insert(self._sorted_keys, positions, new_keys)
        self._slot_of_sorted = np.insert(self._slot_of_sorted, positions, slots)
        self._n_combos = n_after
        qi_names = list(self._table.quasi_identifier_names)
        for cache in self._contractions.values():
            # New joint rows/columns; the matrix is symmetric because every
            # attribute distance matrix is.
            joint = cache["joint_storage"]
            rows = np.ones((slots.size, n_after), dtype=np.float64)
            for position, attribute_index in enumerate(self._rest_indices):
                weights = self._bandwidth_weights(cache["bandwidth"], qi_names[attribute_index])
                column = self._rest_combos[:n_after, position]
                rows *= weights[column[slots]][:, column]
            joint[slots, :n_after] = rows
            joint[:n_after, slots] = rows.T
            cache["contracted_storage"][:, slots, :] = 0.0

    def _update_cache(
        self,
        cache: dict,
        block: np.ndarray,
        rest_touched: np.ndarray,
        cell_solo: np.ndarray,
        cell_rest: np.ndarray,
        previous_pairs: np.ndarray,
    ) -> None:
        """Fold an append batch into one bandwidth's cached contraction.

        ``block`` holds the batch's counts over the touched rest slots
        (``(solo, len(rest_touched), m)``).  Only queries with a positive
        kernel weight towards some appended row can change: the kernels are
        non-negative with compact support, so a query whose solo weight or
        joint rest weight is zero for every touched cell keeps a
        bitwise-identical numerator.
        """
        qi_names = list(self._table.quasi_identifier_names)
        n_combos = self._n_combos
        solo_weights = self._bandwidth_weights(cache["bandwidth"], qi_names[self._solo_index])
        contracted = cache["contracted_storage"][:, :n_combos, :]
        joint = cache["joint_storage"][:n_combos, :n_combos]
        m = contracted.shape[2]
        contracted_delta = (
            solo_weights @ block.reshape(block.shape[0], -1)
        ).reshape(solo_weights.shape[0], rest_touched.size, m)
        contracted[:, rest_touched, :] += contracted_delta

        # Realign the cached numerators with the (possibly grown) query set.
        numerators = np.zeros((self._pair_keys.size, m), dtype=np.float64)
        kept = np.searchsorted(self._pair_keys, previous_pairs)
        numerators[kept] = cache["numerators"]
        fresh = np.ones(self._pair_keys.size, dtype=bool)
        fresh[kept] = False

        # A query (a, r) is affected iff some touched cell (a0, r0) has
        # positive solo weight a->a0 *and* positive joint weight r->r0; count
        # the witnessing cells with one small matmul instead of materialising
        # the (queries x cells) mask.
        witnesses = (solo_weights[:, cell_solo] > 0.0).astype(np.float32) @ (
            joint[:, cell_rest] > 0.0
        ).astype(np.float32).T
        affected = witnesses[self._query_solo, self._query_rest] > 0.0
        # Existing affected queries take the *delta* contraction (touched
        # columns only); brand-new queries need the full contraction.  Both
        # sides are sums of non-negative kernel terms, so an exactly-zero
        # numerator can neither appear nor vanish spuriously.
        update = np.flatnonzero(affected & ~fresh)
        if update.size:
            selected_solo = self._query_solo[update]
            boundaries = np.flatnonzero(np.diff(selected_solo)) + 1
            for run in np.split(update, boundaries):
                a = int(self._query_solo[run[0]])
                numerators[run] += (
                    joint[self._query_rest[run]][:, rest_touched] @ contracted_delta[a]
                )
        self._contract_queries(numerators, np.flatnonzero(fresh), joint, contracted)
        cache["numerators"] = numerators

    def _contract_queries(
        self,
        numerators: np.ndarray,
        selection: np.ndarray,
        joint: np.ndarray,
        contracted: np.ndarray,
    ) -> None:
        """Numerators for the selected query positions (grouped by solo code)."""
        if selection.size == 0:
            return
        selected_solo = self._query_solo[selection]
        boundaries = np.flatnonzero(np.diff(selected_solo)) + 1
        for run in np.split(selection, boundaries):
            a = int(self._query_solo[run[0]])
            numerators[run] = joint[self._query_rest[run]] @ contracted[a]

    def _require_fitted(self) -> MicrodataTable:
        if self._table is None:
            raise KnowledgeError("estimator is not fitted; call fit(table) first")
        return self._table

    def _bandwidth(self, b: float | Bandwidth) -> Bandwidth:
        table = self._require_fitted()
        if isinstance(b, Bandwidth):
            missing = [name for name in table.quasi_identifier_names if name not in b]
            if missing:
                raise KnowledgeError(
                    f"bandwidth does not cover quasi-identifier attributes {missing}"
                )
            return b
        return Bandwidth.uniform(table.quasi_identifier_names, float(b))

    # -- estimation -----------------------------------------------------------------
    def _factored_prior(self, bandwidth: Bandwidth) -> np.ndarray:
        table = self._table
        qi_names = list(table.quasi_identifier_names)
        m = table.sensitive_domain().size
        cache = self._contractions.get(bandwidth.items()) if self.incremental else None
        if cache is not None:
            numerators = cache["numerators"]
        else:
            solo_name = qi_names[self._solo_index]
            solo_weights = self._kernel(self._distance_matrices[solo_name], bandwidth[solo_name])

            n_combos = self._n_combos
            capacity = self._rest_combos.shape[0]
            # Padding slots (growth headroom) only exist in incremental mode,
            # where they must be zero; one-shot estimations get exact-size,
            # uninitialised buffers.
            allocate = np.zeros if self.incremental else np.empty
            joint_storage = allocate((capacity, capacity), dtype=np.float64)
            joint = joint_storage[:n_combos, :n_combos]
            joint[:] = 1.0
            for position, attribute_index in enumerate(self._rest_indices):
                name = qi_names[attribute_index]
                weights = self._kernel(self._distance_matrices[name], bandwidth[name])
                column = self._rest_combos[:n_combos, position]
                joint *= weights[column][:, column]

            # Contract the solo axis first (it is the largest single domain, yet
            # |D_solo|^2 stays tiny next to n^2): K[a_q, r, s].
            solo_size = solo_weights.shape[0]
            contracted_storage = allocate(self._count_storage.shape, dtype=np.float64)
            contracted = contracted_storage[:, :n_combos, :]
            contracted[:] = (
                solo_weights @ self._count_tensor.reshape(solo_size, -1)
            ).reshape(solo_size, n_combos, m)

            numerators = np.empty((self._pair_keys.size, m), dtype=np.float64)
            self._contract_queries(
                numerators, np.arange(self._pair_keys.size), joint, contracted
            )
            if self.incremental:
                self._contractions[bandwidth.items()] = {
                    "bandwidth": bandwidth,
                    "joint_storage": joint_storage,
                    "contracted_storage": contracted_storage,
                    "numerators": numerators,
                }
        denominators = numerators.sum(axis=1)
        degenerate = denominators <= 0.0
        result = numerators / np.where(degenerate, 1.0, denominators)[:, None]
        if degenerate.any():
            result[degenerate] = self._overall
        return result[self._query_inverse]

    def prior_for_table(
        self, bandwidths: Sequence[float | Bandwidth]
    ) -> list[PriorBeliefs]:
        """Prior beliefs of every ``Adv(B_i)`` on the fitted table, one pass.

        Returns one :class:`PriorBeliefs` per entry of ``bandwidths``, in
        order; numerically interchangeable with fitting a
        :class:`KernelPriorEstimator` per bandwidth.
        """
        table = self._require_fitted()
        resolved = [self._bandwidth(b) for b in bandwidths]
        sensitive_values = tuple(table.sensitive_domain().values.tolist())
        results: list[PriorBeliefs] = []
        # Identical bandwidths (common in |skyline| > 1 grids) are computed once.
        computed: dict[tuple[tuple[str, float], ...], np.ndarray] = {}
        for bandwidth in resolved:
            key = bandwidth.items()
            matrix = computed.get(key)
            if matrix is None:
                if self.mode == "factored":
                    matrix = self._factored_prior(bandwidth)
                else:
                    matrix = (
                        KernelPriorEstimator(
                            bandwidth,
                            kernel=self.kernel_name,
                            batch_size=self.batch_size,
                            distance_matrices=self._distance_matrices,
                        )
                        .fit(table)
                        .prior_for_table()
                        .matrix
                    )
                computed[key] = matrix
            results.append(
                PriorBeliefs(
                    matrix=matrix,
                    sensitive_values=sensitive_values,
                    description=f"kernel={self.kernel_name}, {bandwidth.describe()}",
                )
            )
        return results


def batched_kernel_priors(
    table: MicrodataTable,
    bandwidths: Sequence[float | Bandwidth],
    *,
    kernel: str = "epanechnikov",
    distance_matrices: dict[str, np.ndarray] | None = None,
    max_cells: int = 64_000_000,
) -> list[PriorBeliefs]:
    """One-call helper: priors for several adversaries sharing the kernel work."""
    estimator = BatchedKernelPriorEstimator(
        kernel=kernel, distance_matrices=distance_matrices, max_cells=max_cells
    )
    return estimator.fit(table).prior_for_table(bandwidths)


def kernel_prior(
    table: MicrodataTable,
    b: float | Bandwidth,
    *,
    kernel: str = "epanechnikov",
    batch_size: int = _DEFAULT_BATCH_SIZE,
    distance_matrices: dict[str, np.ndarray] | None = None,
) -> PriorBeliefs:
    """One-call helper: fit a kernel estimator on ``table`` and return its priors.

    ``b`` may be a scalar (applied uniformly to every QI attribute, the
    ``B' = (b', ..., b')`` adversary of Section V) or a full
    :class:`~repro.knowledge.bandwidth.Bandwidth`.
    """
    if isinstance(b, Bandwidth):
        bandwidth = b
    else:
        bandwidth = Bandwidth.uniform(table.quasi_identifier_names, float(b))
    estimator = KernelPriorEstimator(
        bandwidth, kernel=kernel, batch_size=batch_size, distance_matrices=distance_matrices
    )
    return estimator.fit(table).prior_for_table()


def uniform_prior(table: MicrodataTable) -> PriorBeliefs:
    """The ignorant adversary: every sensitive value equally likely for every tuple.

    This belief is generally *inconsistent* with the data (Section II-D); it is
    provided so that experiments can contrast it with consistent adversaries.
    """
    m = table.sensitive_domain().size
    matrix = np.full((table.n_rows, m), 1.0 / m)
    return PriorBeliefs(
        matrix=matrix,
        sensitive_values=tuple(table.sensitive_domain().values.tolist()),
        description="uniform (ignorant adversary)",
    )


def overall_prior(table: MicrodataTable) -> PriorBeliefs:
    """The t-closeness adversary: the overall sensitive distribution for every tuple."""
    overall = table.sensitive_distribution()
    matrix = np.tile(overall, (table.n_rows, 1))
    return PriorBeliefs(
        matrix=matrix,
        sensitive_values=tuple(table.sensitive_domain().values.tolist()),
        description="overall distribution (t-closeness adversary)",
    )


def mle_prior(table: MicrodataTable) -> PriorBeliefs:
    """Maximum-likelihood prior: the sensitive distribution among identical QI tuples.

    This is the estimator the paper rejects in Section II-B (high variance, no
    knowledge parameter, no semantics); it is the limiting behaviour of the
    kernel estimator as every bandwidth shrinks to zero.
    """
    codes = table.qi_code_matrix()
    sensitive_codes = table.sensitive_codes()
    m = table.sensitive_domain().size
    unique_codes, inverse = np.unique(codes, axis=0, return_inverse=True)
    matrix = np.zeros((unique_codes.shape[0], m), dtype=np.float64)
    np.add.at(matrix, (inverse, sensitive_codes), 1.0)
    matrix /= matrix.sum(axis=1, keepdims=True)
    return PriorBeliefs(
        matrix=matrix[inverse],
        sensitive_values=tuple(table.sensitive_domain().values.tolist()),
        description="maximum-likelihood (exact QI conditioning)",
    )
