"""Estimating the adversary's prior belief function (Sections II-B and II-C).

The adversary's prior belief is a function ``Ppri : D[QI] -> Sigma`` mapping
every quasi-identifier combination to a probability distribution over the
sensitive domain.  The paper estimates it from the data itself with a
Nadaraya-Watson kernel regression:

.. math::

    \\hat P_{pri}(q) = \\frac{\\sum_{t_j \\in T} P(t_j) \\prod_i K_i(d_i(q_i, t_j[A_i]))}
                            {\\sum_{t_j \\in T} \\prod_i K_i(d_i(q_i, t_j[A_i]))}

where ``P(t_j)`` is the one-hot distribution of tuple ``t_j``'s sensitive
value and ``d_i`` is the normalised attribute distance of Section II-C.

All estimation is served by one shared engine - the factored count-tensor
contraction backend of :mod:`repro.knowledge.backend` - which deduplicates
quasi-identifier combinations, factors the kernel product into a solo
attribute times (hierarchically blocked) rest combinations, and supports
additive append-only updates.  The classes here are thin views over it:

* :class:`KernelPriorEstimator` - one bandwidth (the ``Adv(B)`` adversary of
  a single (B,t) requirement or attack);
* :class:`BatchedKernelPriorEstimator` - many bandwidths in one pass (the
  skyline's estimator), with optional incremental ``append_rows`` /
  ``remove_rows`` / ``update_rows`` deltas for full-lifecycle streaming
  publishers.

Both produce priors numerically identical (to floating-point round-off) to
the flat ``O(n^2 d)`` reference sweep, which survives only as a small-size
equivalence reference behind ``max_cells=0``.

Three baseline adversaries from Section II-D are also provided:

* :func:`uniform_prior` - the "ignorant" adversary assumed by l-diversity
  (NOT consistent with the data; included for comparison only),
* :func:`overall_prior` - the t-closeness adversary whose prior is the overall
  sensitive distribution for every tuple,
* :func:`mle_prior` - the maximum-likelihood estimator that conditions on the
  exact QI combination (the limit of small bandwidths).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.data.table import MicrodataTable
from repro.exceptions import KnowledgeError
from repro.knowledge.backend import (
    DEFAULT_BATCH_SIZE,
    EstimatorConfig,
    FactoredPriorBackend,
    resolve_config,
)
from repro.knowledge.bandwidth import Bandwidth

_DEFAULT_BATCH_SIZE = DEFAULT_BATCH_SIZE


@dataclass(frozen=True)
class PriorBeliefs:
    """Per-tuple prior beliefs of one adversary over one table.

    Attributes
    ----------
    matrix:
        ``(n_rows, m)`` row-stochastic matrix; row ``j`` is the adversary's
        prior distribution over the sensitive domain for tuple ``t_j``.
    sensitive_values:
        The sensitive domain ``D[S]`` in code order (length ``m``).
    description:
        Human-readable description of the adversary (e.g. ``"kernel b=0.3"``).
    """

    matrix: np.ndarray
    sensitive_values: tuple = field(default_factory=tuple)
    description: str = ""

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise KnowledgeError("prior belief matrix must be 2-dimensional")
        if np.any(matrix < -1e-12):
            raise KnowledgeError("prior belief matrix must be non-negative")
        row_sums = matrix.sum(axis=1)
        if not np.allclose(row_sums, 1.0, atol=1e-8):
            raise KnowledgeError("every prior belief row must sum to 1")
        object.__setattr__(self, "matrix", matrix)

    @property
    def n_rows(self) -> int:
        """Number of tuples covered by these beliefs."""
        return int(self.matrix.shape[0])

    @property
    def n_sensitive_values(self) -> int:
        """Size ``m`` of the sensitive domain."""
        return int(self.matrix.shape[1])

    def for_tuple(self, index: int) -> np.ndarray:
        """Prior distribution of tuple ``index``."""
        return self.matrix[index]

    def for_group(self, indices: np.ndarray) -> np.ndarray:
        """Prior distributions (rows) for a group of tuple indices."""
        return self.matrix[np.asarray(indices, dtype=np.int64)]


class KernelPriorEstimator:
    """Nadaraya-Watson product-kernel estimator for one bandwidth.

    A thin single-bandwidth view over the shared
    :class:`~repro.knowledge.backend.FactoredPriorBackend`: fitting builds
    the factored count-tensor state once, estimation contracts it for this
    estimator's bandwidth.  Results are numerically interchangeable with the
    flat reference sweep (``max_cells=0``).

    Parameters
    ----------
    bandwidth:
        Per-attribute :class:`~repro.knowledge.bandwidth.Bandwidth`.  It must
        cover every quasi-identifier of the table passed to :meth:`fit`.
    config:
        The consolidated :class:`~repro.knowledge.backend.EstimatorConfig`
        (kernel, budgets, ``jobs``, ``chunk_rows``).  The per-knob keywords
        below are deprecation shims layered on top of it via
        :func:`~repro.knowledge.backend.resolve_config`.
    kernel:
        Name of the kernel function (default ``"epanechnikov"``, as in the
        paper).
    batch_size:
        Query rows per vectorised batch of the flat reference sweep.
    distance_matrices:
        Optional mapping from attribute name to its precomputed ``|D_i| x
        |D_i|`` normalised distance matrix, shared between estimators.
    max_cells:
        Cell budget of the backend's blocked contraction (``0`` selects the
        flat reference sweep).
    jobs:
        Worker threads for the backend's parallel contraction (``None``
        resolves to ``REPRO_JOBS`` / ``os.cpu_count()``; ``1`` is the serial
        reference path; results are bitwise identical either way).
    """

    def __init__(
        self,
        bandwidth: Bandwidth,
        *,
        config: EstimatorConfig | None = None,
        kernel: str | None = None,
        batch_size: int | None = None,
        distance_matrices: dict[str, np.ndarray] | None = None,
        max_cells: int | None = None,
        jobs: int | None = None,
    ):
        self.bandwidth = bandwidth
        self.config = resolve_config(
            config, kernel=kernel, batch_size=batch_size, max_cells=max_cells, jobs=jobs
        )
        self.kernel_name = self.config.kernel
        self.batch_size = self.config.batch_size
        self.max_cells = self.config.max_cells
        self._backend = FactoredPriorBackend(
            self.config, distance_matrices=distance_matrices
        )

    @property
    def backend(self) -> FactoredPriorBackend:
        """The shared contraction backend this view delegates to."""
        return self._backend

    # -- fitting --------------------------------------------------------------------
    def fit(self, table) -> "KernelPriorEstimator":
        """Build the backend's factored state for ``table`` (table or source).

        A :class:`~repro.data.source.TableSource` fits chunk by chunk,
        bitwise identical to the resident fit (see
        :meth:`~repro.knowledge.backend.FactoredPriorBackend.fit`).
        """
        names = table.schema.quasi_identifier_names
        missing = [name for name in names if name not in self.bandwidth]
        if missing:
            raise KnowledgeError(
                f"bandwidth does not cover quasi-identifier attributes {missing}"
            )
        self._backend.fit(table)
        return self

    # -- estimation -----------------------------------------------------------------
    def prior_for_codes(self, query_codes: np.ndarray) -> np.ndarray:
        """Prior distributions for query rows given as QI *code* combinations.

        Parameters
        ----------
        query_codes:
            ``(q, d)`` integer matrix of attribute codes (one row per query
            point), in the same code space as the fitted table.

        Returns
        -------
        numpy.ndarray
            ``(q, m)`` row-stochastic matrix of prior beliefs.  Queries whose
            kernel weights are all zero (possible with compact-support kernels
            far away from any data) fall back to the overall sensitive
            distribution, which is the least-informative consistent belief.
        """
        return self._backend.matrix_for_codes(query_codes, self.bandwidth)

    def prior_for_table(self, table: MicrodataTable | None = None) -> PriorBeliefs:
        """Prior beliefs for every tuple of ``table`` (default: the fitted table)."""
        fitted = self._backend.table
        if fitted is None:
            raise KnowledgeError("estimator is not fitted; call fit(table) first")
        if table is None or table is fitted:
            matrix = self._backend.matrices([self.bandwidth])[0]
        else:
            # Re-encode the target's QI values against the fitted table's domains.
            codes = np.column_stack(
                [
                    fitted.domain(name).encode(table.column(name).tolist())
                    for name in fitted.quasi_identifier_names
                ]
            )
            matrix = self._backend.matrix_for_codes(codes, self.bandwidth)
        return PriorBeliefs(
            matrix=matrix,
            sensitive_values=tuple(fitted.sensitive_domain().values.tolist()),
            description=f"kernel={self.kernel_name}, {self.bandwidth.describe()}",
        )


class BatchedKernelPriorEstimator:
    """Kernel priors for *many* bandwidths in one pass (the skyline's estimator).

    Auditing a release against a skyline ``{(B_1, t_1), ..., (B_p, t_p)}``
    needs one prior belief function per adversary.  This view shares one
    :class:`~repro.knowledge.backend.FactoredPriorBackend` fit across every
    bandwidth: distance matrices, QI deduplication and the count tensor are
    computed once, each bandwidth only pays its tiny kernel matrices and the
    chained contraction.  Results match the flat reference to floating-point
    round-off.

    Streams can mutate a fitted estimator with :meth:`append_rows`,
    :meth:`remove_rows` and :meth:`update_rows`: the count tensor is additive
    in rows, so the priors of the changed table are produced by folding the
    batch's (possibly negative, exactly-integer) count deltas into the
    factored state instead of re-sweeping all ``n`` rows.  With
    ``incremental=True`` the per-bandwidth contraction artefacts (block
    joints, the solo-contracted tensor and the per-query numerators) are
    cached between calls and only the queries whose compact-support kernel
    neighbourhood contains a changed row are recontracted.

    Parameters
    ----------
    config:
        The consolidated :class:`~repro.knowledge.backend.EstimatorConfig`;
        the per-knob keywords below are deprecation shims layered on top of
        it via :func:`~repro.knowledge.backend.resolve_config`.
    kernel:
        Kernel function name (default ``"epanechnikov"``, as in the paper).
    batch_size:
        Query rows per vectorised batch of the flat reference sweep.
    distance_matrices:
        Optional precomputed per-attribute distance matrices to share.
    max_cells:
        Cell budget for the backend's blocked contraction (``0`` selects the
        flat reference sweep); see
        :class:`~repro.knowledge.backend.FactoredPriorBackend`.
    incremental:
        Cache the per-bandwidth contraction state so :meth:`append_rows`
        updates it in place (costs memory proportional to the contracted
        tensor per distinct bandwidth; off by default).
    jobs:
        Worker threads for the backend's parallel contraction (``None``
        resolves to ``REPRO_JOBS`` / ``os.cpu_count()``; ``1`` is the serial
        reference path; results are bitwise identical either way).
    """

    def __init__(
        self,
        *,
        config: EstimatorConfig | None = None,
        kernel: str | None = None,
        batch_size: int | None = None,
        distance_matrices: dict[str, np.ndarray] | None = None,
        max_cells: int | None = None,
        incremental: bool = False,
        jobs: int | None = None,
    ):
        self.config = resolve_config(
            config, kernel=kernel, batch_size=batch_size, max_cells=max_cells, jobs=jobs
        )
        self.kernel_name = self.config.kernel
        self.batch_size = self.config.batch_size
        self.max_cells = self.config.max_cells
        self.incremental = bool(incremental)
        self._backend = FactoredPriorBackend(
            self.config,
            distance_matrices=distance_matrices,
            incremental=incremental,
        )

    @property
    def backend(self) -> FactoredPriorBackend:
        """The shared contraction backend this view delegates to."""
        return self._backend

    @property
    def mode(self) -> str | None:
        """``"factored"`` or ``"flat"`` (``None`` before :meth:`fit`)."""
        return self._backend.mode

    @property
    def blocks(self) -> tuple[tuple[str, ...], ...]:
        """Attribute names of each rest block of the blocked contraction."""
        return self._backend.blocks

    # -- fitting --------------------------------------------------------------------
    def fit(self, table) -> "BatchedKernelPriorEstimator":
        """Precompute every bandwidth-independent artefact for ``table``.

        ``table`` is a resident :class:`~repro.data.table.MicrodataTable` or
        a chunked :class:`~repro.data.source.TableSource` (bitwise-identical
        streamed fit).
        """
        self._backend.fit(table)
        return self

    def append_rows(self, table: MicrodataTable) -> str:
        """Grow the fitted state to ``table`` (the previous table plus appended rows).

        Returns ``"incremental"`` when the factored state was updated in
        place, or ``"refit"`` when the backend fell back to a full
        :meth:`fit` (flat reference mode, or changed domains).
        """
        return self._backend.append_rows(table)

    def remove_rows(self, table: MicrodataTable, removed: np.ndarray) -> str:
        """Shrink the fitted state to ``table`` (the fitted table minus ``removed``).

        ``removed`` holds row positions of the fitted table.  Counts are
        subtracted from the factored state exactly; returns ``"incremental"``
        or ``"refit"`` (flat mode, changed domains, or an emptied rest slot -
        see :meth:`~repro.knowledge.backend.FactoredPriorBackend.remove_rows`).
        """
        return self._backend.remove_rows(table, removed)

    def update_rows(self, table: MicrodataTable, positions: np.ndarray) -> str:
        """Fold in-place row corrections at ``positions`` into the fitted state.

        ``table`` has the fitted table's rows with the ones at ``positions``
        replaced (within the fitted domains).  Paired negative/positive count
        deltas are exact; returns ``"incremental"`` or ``"refit"`` (see
        :meth:`~repro.knowledge.backend.FactoredPriorBackend.update_rows`).
        """
        return self._backend.update_rows(table, positions)

    # -- estimation -----------------------------------------------------------------
    def prior_for_table(
        self, bandwidths: Sequence[float | Bandwidth]
    ) -> list[PriorBeliefs]:
        """Prior beliefs of every ``Adv(B_i)`` on the fitted table, one pass.

        Returns one :class:`PriorBeliefs` per entry of ``bandwidths``, in
        order; numerically interchangeable with fitting a
        :class:`KernelPriorEstimator` per bandwidth.  Identical bandwidths
        (common in ``|skyline| > 1`` grids) are computed once and share one
        matrix object.
        """
        table = self._backend.table
        if table is None:
            raise KnowledgeError("estimator is not fitted; call fit(table) first")
        resolved = [self._backend.resolve_bandwidth(b) for b in bandwidths]
        matrices = self._backend.matrices(resolved)
        sensitive_values = tuple(table.sensitive_domain().values.tolist())
        return [
            PriorBeliefs(
                matrix=matrix,
                sensitive_values=sensitive_values,
                description=f"kernel={self.kernel_name}, {bandwidth.describe()}",
            )
            for bandwidth, matrix in zip(resolved, matrices)
        ]


def batched_kernel_priors(
    table,
    bandwidths: Sequence[float | Bandwidth],
    *,
    config: EstimatorConfig | None = None,
    kernel: str | None = None,
    distance_matrices: dict[str, np.ndarray] | None = None,
    max_cells: int | None = None,
    jobs: int | None = None,
) -> list[PriorBeliefs]:
    """One-call helper: priors for several adversaries sharing the kernel work."""
    estimator = BatchedKernelPriorEstimator(
        config=config,
        kernel=kernel,
        distance_matrices=distance_matrices,
        max_cells=max_cells,
        jobs=jobs,
    )
    return estimator.fit(table).prior_for_table(bandwidths)


def kernel_prior(
    table,
    b: float | Bandwidth,
    *,
    config: EstimatorConfig | None = None,
    kernel: str | None = None,
    batch_size: int | None = None,
    distance_matrices: dict[str, np.ndarray] | None = None,
    max_cells: int | None = None,
    jobs: int | None = None,
) -> PriorBeliefs:
    """One-call helper: fit a kernel estimator on ``table`` and return its priors.

    ``table`` is a :class:`~repro.data.table.MicrodataTable` or a chunked
    :class:`~repro.data.source.TableSource`.  ``b`` may be a scalar (applied
    uniformly to every QI attribute, the ``B' = (b', ..., b')`` adversary of
    Section V) or a full :class:`~repro.knowledge.bandwidth.Bandwidth`.
    Estimation runs through the factored contraction backend;
    ``max_cells=0`` selects the flat reference sweep.
    """
    if isinstance(b, Bandwidth):
        bandwidth = b
    else:
        bandwidth = Bandwidth.uniform(table.schema.quasi_identifier_names, float(b))
    estimator = KernelPriorEstimator(
        bandwidth,
        config=config,
        kernel=kernel,
        batch_size=batch_size,
        distance_matrices=distance_matrices,
        max_cells=max_cells,
        jobs=jobs,
    )
    return estimator.fit(table).prior_for_table()


def uniform_prior(table: MicrodataTable) -> PriorBeliefs:
    """The ignorant adversary: every sensitive value equally likely for every tuple.

    This belief is generally *inconsistent* with the data (Section II-D); it is
    provided so that experiments can contrast it with consistent adversaries.
    """
    m = table.sensitive_domain().size
    matrix = np.full((table.n_rows, m), 1.0 / m)
    return PriorBeliefs(
        matrix=matrix,
        sensitive_values=tuple(table.sensitive_domain().values.tolist()),
        description="uniform (ignorant adversary)",
    )


def overall_prior(table: MicrodataTable) -> PriorBeliefs:
    """The t-closeness adversary: the overall sensitive distribution for every tuple."""
    overall = table.sensitive_distribution()
    matrix = np.tile(overall, (table.n_rows, 1))
    return PriorBeliefs(
        matrix=matrix,
        sensitive_values=tuple(table.sensitive_domain().values.tolist()),
        description="overall distribution (t-closeness adversary)",
    )


def mle_prior(table: MicrodataTable) -> PriorBeliefs:
    """Maximum-likelihood prior: the sensitive distribution among identical QI tuples.

    This is the estimator the paper rejects in Section II-B (high variance, no
    knowledge parameter, no semantics); it is the limiting behaviour of the
    kernel estimator as every bandwidth shrinks to zero.
    """
    codes = table.qi_code_matrix()
    sensitive_codes = table.sensitive_codes()
    m = table.sensitive_domain().size
    unique_codes, inverse = np.unique(codes, axis=0, return_inverse=True)
    matrix = np.zeros((unique_codes.shape[0], m), dtype=np.float64)
    np.add.at(matrix, (inverse, sensitive_codes), 1.0)
    matrix /= matrix.sum(axis=1, keepdims=True)
    return PriorBeliefs(
        matrix=matrix[inverse],
        sensitive_values=tuple(table.sensitive_domain().values.tolist()),
        description="maximum-likelihood (exact QI conditioning)",
    )
