"""Estimating the adversary's prior belief function (Sections II-B and II-C).

The adversary's prior belief is a function ``Ppri : D[QI] -> Sigma`` mapping
every quasi-identifier combination to a probability distribution over the
sensitive domain.  The paper estimates it from the data itself with a
Nadaraya-Watson kernel regression:

.. math::

    \\hat P_{pri}(q) = \\frac{\\sum_{t_j \\in T} P(t_j) \\prod_i K_i(d_i(q_i, t_j[A_i]))}
                            {\\sum_{t_j \\in T} \\prod_i K_i(d_i(q_i, t_j[A_i]))}

where ``P(t_j)`` is the one-hot distribution of tuple ``t_j``'s sensitive
value and ``d_i`` is the normalised attribute distance of Section II-C.

:class:`KernelPriorEstimator` implements this estimator.  Distances are
precomputed per attribute as ``|D_i| x |D_i|`` matrices, so evaluating the
prior for every tuple of an ``n``-row table costs ``O(n^2 d)`` arithmetic but
is fully vectorised (batched numpy), which keeps 10K-30K row tables practical.

Three baseline adversaries from Section II-D are also provided:

* :func:`uniform_prior` - the "ignorant" adversary assumed by l-diversity
  (NOT consistent with the data; included for comparison only),
* :func:`overall_prior` - the t-closeness adversary whose prior is the overall
  sensitive distribution for every tuple,
* :func:`mle_prior` - the maximum-likelihood estimator that conditions on the
  exact QI combination (the limit of small bandwidths).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.distance import attribute_distance_matrix
from repro.data.table import MicrodataTable
from repro.exceptions import KnowledgeError
from repro.knowledge.bandwidth import Bandwidth
from repro.knowledge.kernels import get_kernel

_DEFAULT_BATCH_SIZE = 256


@dataclass(frozen=True)
class PriorBeliefs:
    """Per-tuple prior beliefs of one adversary over one table.

    Attributes
    ----------
    matrix:
        ``(n_rows, m)`` row-stochastic matrix; row ``j`` is the adversary's
        prior distribution over the sensitive domain for tuple ``t_j``.
    sensitive_values:
        The sensitive domain ``D[S]`` in code order (length ``m``).
    description:
        Human-readable description of the adversary (e.g. ``"kernel b=0.3"``).
    """

    matrix: np.ndarray
    sensitive_values: tuple = field(default_factory=tuple)
    description: str = ""

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise KnowledgeError("prior belief matrix must be 2-dimensional")
        if np.any(matrix < -1e-12):
            raise KnowledgeError("prior belief matrix must be non-negative")
        row_sums = matrix.sum(axis=1)
        if not np.allclose(row_sums, 1.0, atol=1e-8):
            raise KnowledgeError("every prior belief row must sum to 1")
        object.__setattr__(self, "matrix", matrix)

    @property
    def n_rows(self) -> int:
        """Number of tuples covered by these beliefs."""
        return int(self.matrix.shape[0])

    @property
    def n_sensitive_values(self) -> int:
        """Size ``m`` of the sensitive domain."""
        return int(self.matrix.shape[1])

    def for_tuple(self, index: int) -> np.ndarray:
        """Prior distribution of tuple ``index``."""
        return self.matrix[index]

    def for_group(self, indices: np.ndarray) -> np.ndarray:
        """Prior distributions (rows) for a group of tuple indices."""
        return self.matrix[np.asarray(indices, dtype=np.int64)]


class KernelPriorEstimator:
    """Nadaraya-Watson product-kernel estimator of the prior belief function.

    Parameters
    ----------
    bandwidth:
        Per-attribute :class:`~repro.knowledge.bandwidth.Bandwidth`.  It must
        cover every quasi-identifier of the table passed to :meth:`fit`.
    kernel:
        Name of the kernel function (default ``"epanechnikov"``, as in the
        paper).
    batch_size:
        Number of query rows evaluated per vectorised batch.  Purely a
        speed/memory trade-off; results do not depend on it.
    distance_matrices:
        Optional mapping from attribute name to its precomputed ``|D_i| x
        |D_i|`` normalised distance matrix.  The matrices depend only on the
        attribute domains - not on the bandwidth - so callers fitting several
        estimators on one table (e.g. a session sweeping over ``b`` values)
        can compute them once and share them; attributes missing from the
        mapping are computed as usual.
    """

    def __init__(
        self,
        bandwidth: Bandwidth,
        *,
        kernel: str = "epanechnikov",
        batch_size: int = _DEFAULT_BATCH_SIZE,
        distance_matrices: dict[str, np.ndarray] | None = None,
    ):
        if batch_size <= 0:
            raise KnowledgeError("batch_size must be positive")
        self.bandwidth = bandwidth
        self.kernel_name = kernel
        self._kernel = get_kernel(kernel)
        self.batch_size = int(batch_size)
        self._distance_matrices = dict(distance_matrices) if distance_matrices else {}
        self._table: MicrodataTable | None = None
        self._weight_matrices: list[np.ndarray] = []
        self._qi_codes: np.ndarray | None = None
        self._sensitive_codes: np.ndarray | None = None
        self._one_hot: np.ndarray | None = None
        self._overall: np.ndarray | None = None

    # -- fitting --------------------------------------------------------------------
    def fit(self, table: MicrodataTable) -> "KernelPriorEstimator":
        """Precompute per-attribute kernel weight matrices for ``table``."""
        qi_names = table.quasi_identifier_names
        missing = [name for name in qi_names if name not in self.bandwidth]
        if missing:
            raise KnowledgeError(
                f"bandwidth does not cover quasi-identifier attributes {missing}"
            )
        self._table = table
        self._weight_matrices = []
        for name in qi_names:
            distances = self._distance_matrices.get(name)
            if distances is None:
                distances = attribute_distance_matrix(table.domain(name))
            weights = self._kernel(distances, self.bandwidth[name])
            self._weight_matrices.append(np.asarray(weights, dtype=np.float64))
        self._qi_codes = table.qi_code_matrix()
        self._sensitive_codes = table.sensitive_codes()
        m = table.sensitive_domain().size
        one_hot = np.zeros((table.n_rows, m), dtype=np.float64)
        one_hot[np.arange(table.n_rows), self._sensitive_codes] = 1.0
        self._one_hot = one_hot
        self._overall = table.sensitive_distribution()
        return self

    def _require_fitted(self) -> MicrodataTable:
        if self._table is None:
            raise KnowledgeError("estimator is not fitted; call fit(table) first")
        return self._table

    # -- estimation -----------------------------------------------------------------
    def prior_for_codes(self, query_codes: np.ndarray) -> np.ndarray:
        """Prior distributions for query rows given as QI *code* combinations.

        Parameters
        ----------
        query_codes:
            ``(q, d)`` integer matrix of attribute codes (one row per query
            point), in the same code space as the fitted table.

        Returns
        -------
        numpy.ndarray
            ``(q, m)`` row-stochastic matrix of prior beliefs.  Queries whose
            kernel weights are all zero (possible with compact-support kernels
            far away from any data) fall back to the overall sensitive
            distribution, which is the least-informative consistent belief.
        """
        table = self._require_fitted()
        query_codes = np.atleast_2d(np.asarray(query_codes, dtype=np.int64))
        n_queries, n_attributes = query_codes.shape
        if n_attributes != len(self._weight_matrices):
            raise KnowledgeError(
                f"query has {n_attributes} attributes but the estimator was fitted on "
                f"{len(self._weight_matrices)}"
            )
        m = table.sensitive_domain().size
        data_codes = self._qi_codes
        result = np.empty((n_queries, m), dtype=np.float64)
        for start in range(0, n_queries, self.batch_size):
            stop = min(start + self.batch_size, n_queries)
            batch = query_codes[start:stop]
            weights = np.ones((stop - start, data_codes.shape[0]), dtype=np.float64)
            for attribute_index, weight_matrix in enumerate(self._weight_matrices):
                weights *= weight_matrix[batch[:, attribute_index]][:, data_codes[:, attribute_index]]
            numerators = weights @ self._one_hot
            denominators = weights.sum(axis=1)
            degenerate = denominators <= 0.0
            safe = np.where(degenerate, 1.0, denominators)
            block = numerators / safe[:, None]
            if degenerate.any():
                block[degenerate] = self._overall
            result[start:stop] = block
        return result

    def prior_for_table(self, table: MicrodataTable | None = None) -> PriorBeliefs:
        """Prior beliefs for every tuple of ``table`` (default: the fitted table)."""
        fitted = self._require_fitted()
        target = table if table is not None else fitted
        if target is not fitted:
            # Re-encode the target's QI values against the fitted table's domains.
            codes = np.column_stack(
                [
                    fitted.domain(name).encode(target.column(name).tolist())
                    for name in fitted.quasi_identifier_names
                ]
            )
        else:
            codes = self._qi_codes
        unique_codes, inverse = np.unique(codes, axis=0, return_inverse=True)
        unique_priors = self.prior_for_codes(unique_codes)
        matrix = unique_priors[inverse]
        return PriorBeliefs(
            matrix=matrix,
            sensitive_values=tuple(fitted.sensitive_domain().values.tolist()),
            description=f"kernel={self.kernel_name}, {self.bandwidth.describe()}",
        )


def kernel_prior(
    table: MicrodataTable,
    b: float | Bandwidth,
    *,
    kernel: str = "epanechnikov",
    batch_size: int = _DEFAULT_BATCH_SIZE,
    distance_matrices: dict[str, np.ndarray] | None = None,
) -> PriorBeliefs:
    """One-call helper: fit a kernel estimator on ``table`` and return its priors.

    ``b`` may be a scalar (applied uniformly to every QI attribute, the
    ``B' = (b', ..., b')`` adversary of Section V) or a full
    :class:`~repro.knowledge.bandwidth.Bandwidth`.
    """
    if isinstance(b, Bandwidth):
        bandwidth = b
    else:
        bandwidth = Bandwidth.uniform(table.quasi_identifier_names, float(b))
    estimator = KernelPriorEstimator(
        bandwidth, kernel=kernel, batch_size=batch_size, distance_matrices=distance_matrices
    )
    return estimator.fit(table).prior_for_table()


def uniform_prior(table: MicrodataTable) -> PriorBeliefs:
    """The ignorant adversary: every sensitive value equally likely for every tuple.

    This belief is generally *inconsistent* with the data (Section II-D); it is
    provided so that experiments can contrast it with consistent adversaries.
    """
    m = table.sensitive_domain().size
    matrix = np.full((table.n_rows, m), 1.0 / m)
    return PriorBeliefs(
        matrix=matrix,
        sensitive_values=tuple(table.sensitive_domain().values.tolist()),
        description="uniform (ignorant adversary)",
    )


def overall_prior(table: MicrodataTable) -> PriorBeliefs:
    """The t-closeness adversary: the overall sensitive distribution for every tuple."""
    overall = table.sensitive_distribution()
    matrix = np.tile(overall, (table.n_rows, 1))
    return PriorBeliefs(
        matrix=matrix,
        sensitive_values=tuple(table.sensitive_domain().values.tolist()),
        description="overall distribution (t-closeness adversary)",
    )


def mle_prior(table: MicrodataTable) -> PriorBeliefs:
    """Maximum-likelihood prior: the sensitive distribution among identical QI tuples.

    This is the estimator the paper rejects in Section II-B (high variance, no
    knowledge parameter, no semantics); it is the limiting behaviour of the
    kernel estimator as every bandwidth shrinks to zero.
    """
    codes = table.qi_code_matrix()
    sensitive_codes = table.sensitive_codes()
    m = table.sensitive_domain().size
    unique_codes, inverse = np.unique(codes, axis=0, return_inverse=True)
    matrix = np.zeros((unique_codes.shape[0], m), dtype=np.float64)
    np.add.at(matrix, (inverse, sensitive_codes), 1.0)
    matrix /= matrix.sum(axis=1, keepdims=True)
    return PriorBeliefs(
        matrix=matrix[inverse],
        sensitive_values=tuple(table.sensitive_domain().values.tolist()),
        description="maximum-likelihood (exact QI conditioning)",
    )
