"""Estimating the adversary's prior belief function (Sections II-B and II-C).

The adversary's prior belief is a function ``Ppri : D[QI] -> Sigma`` mapping
every quasi-identifier combination to a probability distribution over the
sensitive domain.  The paper estimates it from the data itself with a
Nadaraya-Watson kernel regression:

.. math::

    \\hat P_{pri}(q) = \\frac{\\sum_{t_j \\in T} P(t_j) \\prod_i K_i(d_i(q_i, t_j[A_i]))}
                            {\\sum_{t_j \\in T} \\prod_i K_i(d_i(q_i, t_j[A_i]))}

where ``P(t_j)`` is the one-hot distribution of tuple ``t_j``'s sensitive
value and ``d_i`` is the normalised attribute distance of Section II-C.

:class:`KernelPriorEstimator` implements this estimator.  Distances are
precomputed per attribute as ``|D_i| x |D_i|`` matrices, so evaluating the
prior for every tuple of an ``n``-row table costs ``O(n^2 d)`` arithmetic but
is fully vectorised (batched numpy), which keeps 10K-30K row tables practical.

Three baseline adversaries from Section II-D are also provided:

* :func:`uniform_prior` - the "ignorant" adversary assumed by l-diversity
  (NOT consistent with the data; included for comparison only),
* :func:`overall_prior` - the t-closeness adversary whose prior is the overall
  sensitive distribution for every tuple,
* :func:`mle_prior` - the maximum-likelihood estimator that conditions on the
  exact QI combination (the limit of small bandwidths).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.data.distance import attribute_distance_matrix
from repro.data.table import MicrodataTable
from repro.exceptions import KnowledgeError
from repro.knowledge.bandwidth import Bandwidth
from repro.knowledge.kernels import get_kernel

_DEFAULT_BATCH_SIZE = 256


@dataclass(frozen=True)
class PriorBeliefs:
    """Per-tuple prior beliefs of one adversary over one table.

    Attributes
    ----------
    matrix:
        ``(n_rows, m)`` row-stochastic matrix; row ``j`` is the adversary's
        prior distribution over the sensitive domain for tuple ``t_j``.
    sensitive_values:
        The sensitive domain ``D[S]`` in code order (length ``m``).
    description:
        Human-readable description of the adversary (e.g. ``"kernel b=0.3"``).
    """

    matrix: np.ndarray
    sensitive_values: tuple = field(default_factory=tuple)
    description: str = ""

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise KnowledgeError("prior belief matrix must be 2-dimensional")
        if np.any(matrix < -1e-12):
            raise KnowledgeError("prior belief matrix must be non-negative")
        row_sums = matrix.sum(axis=1)
        if not np.allclose(row_sums, 1.0, atol=1e-8):
            raise KnowledgeError("every prior belief row must sum to 1")
        object.__setattr__(self, "matrix", matrix)

    @property
    def n_rows(self) -> int:
        """Number of tuples covered by these beliefs."""
        return int(self.matrix.shape[0])

    @property
    def n_sensitive_values(self) -> int:
        """Size ``m`` of the sensitive domain."""
        return int(self.matrix.shape[1])

    def for_tuple(self, index: int) -> np.ndarray:
        """Prior distribution of tuple ``index``."""
        return self.matrix[index]

    def for_group(self, indices: np.ndarray) -> np.ndarray:
        """Prior distributions (rows) for a group of tuple indices."""
        return self.matrix[np.asarray(indices, dtype=np.int64)]


class KernelPriorEstimator:
    """Nadaraya-Watson product-kernel estimator of the prior belief function.

    Parameters
    ----------
    bandwidth:
        Per-attribute :class:`~repro.knowledge.bandwidth.Bandwidth`.  It must
        cover every quasi-identifier of the table passed to :meth:`fit`.
    kernel:
        Name of the kernel function (default ``"epanechnikov"``, as in the
        paper).
    batch_size:
        Number of query rows evaluated per vectorised batch.  Purely a
        speed/memory trade-off; results do not depend on it.
    distance_matrices:
        Optional mapping from attribute name to its precomputed ``|D_i| x
        |D_i|`` normalised distance matrix.  The matrices depend only on the
        attribute domains - not on the bandwidth - so callers fitting several
        estimators on one table (e.g. a session sweeping over ``b`` values)
        can compute them once and share them; attributes missing from the
        mapping are computed as usual.
    """

    def __init__(
        self,
        bandwidth: Bandwidth,
        *,
        kernel: str = "epanechnikov",
        batch_size: int = _DEFAULT_BATCH_SIZE,
        distance_matrices: dict[str, np.ndarray] | None = None,
    ):
        if batch_size <= 0:
            raise KnowledgeError("batch_size must be positive")
        self.bandwidth = bandwidth
        self.kernel_name = kernel
        self._kernel = get_kernel(kernel)
        self.batch_size = int(batch_size)
        self._distance_matrices = dict(distance_matrices) if distance_matrices else {}
        self._table: MicrodataTable | None = None
        self._weight_matrices: list[np.ndarray] = []
        self._qi_codes: np.ndarray | None = None
        self._sensitive_codes: np.ndarray | None = None
        self._one_hot: np.ndarray | None = None
        self._overall: np.ndarray | None = None

    # -- fitting --------------------------------------------------------------------
    def fit(self, table: MicrodataTable) -> "KernelPriorEstimator":
        """Precompute per-attribute kernel weight matrices for ``table``."""
        qi_names = table.quasi_identifier_names
        missing = [name for name in qi_names if name not in self.bandwidth]
        if missing:
            raise KnowledgeError(
                f"bandwidth does not cover quasi-identifier attributes {missing}"
            )
        self._table = table
        self._weight_matrices = []
        for name in qi_names:
            distances = self._distance_matrices.get(name)
            if distances is None:
                distances = attribute_distance_matrix(table.domain(name))
            weights = self._kernel(distances, self.bandwidth[name])
            self._weight_matrices.append(np.asarray(weights, dtype=np.float64))
        self._qi_codes = table.qi_code_matrix()
        self._sensitive_codes = table.sensitive_codes()
        m = table.sensitive_domain().size
        one_hot = np.zeros((table.n_rows, m), dtype=np.float64)
        one_hot[np.arange(table.n_rows), self._sensitive_codes] = 1.0
        self._one_hot = one_hot
        self._overall = table.sensitive_distribution()
        return self

    def _require_fitted(self) -> MicrodataTable:
        if self._table is None:
            raise KnowledgeError("estimator is not fitted; call fit(table) first")
        return self._table

    # -- estimation -----------------------------------------------------------------
    def prior_for_codes(self, query_codes: np.ndarray) -> np.ndarray:
        """Prior distributions for query rows given as QI *code* combinations.

        Parameters
        ----------
        query_codes:
            ``(q, d)`` integer matrix of attribute codes (one row per query
            point), in the same code space as the fitted table.

        Returns
        -------
        numpy.ndarray
            ``(q, m)`` row-stochastic matrix of prior beliefs.  Queries whose
            kernel weights are all zero (possible with compact-support kernels
            far away from any data) fall back to the overall sensitive
            distribution, which is the least-informative consistent belief.
        """
        table = self._require_fitted()
        query_codes = np.atleast_2d(np.asarray(query_codes, dtype=np.int64))
        n_queries, n_attributes = query_codes.shape
        if n_attributes != len(self._weight_matrices):
            raise KnowledgeError(
                f"query has {n_attributes} attributes but the estimator was fitted on "
                f"{len(self._weight_matrices)}"
            )
        m = table.sensitive_domain().size
        data_codes = self._qi_codes
        result = np.empty((n_queries, m), dtype=np.float64)
        for start in range(0, n_queries, self.batch_size):
            stop = min(start + self.batch_size, n_queries)
            batch = query_codes[start:stop]
            weights = np.ones((stop - start, data_codes.shape[0]), dtype=np.float64)
            for attribute_index, weight_matrix in enumerate(self._weight_matrices):
                weights *= weight_matrix[batch[:, attribute_index]][:, data_codes[:, attribute_index]]
            numerators = weights @ self._one_hot
            denominators = weights.sum(axis=1)
            degenerate = denominators <= 0.0
            safe = np.where(degenerate, 1.0, denominators)
            block = numerators / safe[:, None]
            if degenerate.any():
                block[degenerate] = self._overall
            result[start:stop] = block
        return result

    def prior_for_table(self, table: MicrodataTable | None = None) -> PriorBeliefs:
        """Prior beliefs for every tuple of ``table`` (default: the fitted table)."""
        fitted = self._require_fitted()
        target = table if table is not None else fitted
        if target is not fitted:
            # Re-encode the target's QI values against the fitted table's domains.
            codes = np.column_stack(
                [
                    fitted.domain(name).encode(target.column(name).tolist())
                    for name in fitted.quasi_identifier_names
                ]
            )
        else:
            codes = self._qi_codes
        unique_codes, inverse = np.unique(codes, axis=0, return_inverse=True)
        unique_priors = self.prior_for_codes(unique_codes)
        matrix = unique_priors[inverse]
        return PriorBeliefs(
            matrix=matrix,
            sensitive_values=tuple(fitted.sensitive_domain().values.tolist()),
            description=f"kernel={self.kernel_name}, {self.bandwidth.describe()}",
        )


class BatchedKernelPriorEstimator:
    """Kernel priors for *many* bandwidths in one pass (the skyline's estimator).

    Auditing a release against a skyline ``{(B_1, t_1), ..., (B_p, t_p)}``
    needs one prior belief function per adversary.  Fitting a separate
    :class:`KernelPriorEstimator` per bandwidth repeats the ``O(n^2 d)`` weight
    products ``p`` times, even though everything except the kernel evaluation
    is bandwidth-independent.  This estimator batches the bandwidth axis:

    * **shared work** (done once in :meth:`fit`): attribute distance matrices,
      the de-duplication of QI combinations, and - on schemas where one block
      of attributes has a small observed joint domain - a count tensor
      ``M[a, r, s]`` = number of tuples with solo-attribute code ``a``, joint
      rest-combination ``r`` and sensitive value ``s``;
    * **per-bandwidth work**: tiny per-attribute kernel matrices plus two
      small matrix products contracting ``M`` (first over the solo attribute,
      then - batched per solo value - over the rest combinations).

    The factored contraction is algebraically identical to the flat
    Nadaraya-Watson sum, so results match :class:`KernelPriorEstimator` to
    floating-point round-off.  When the factorisation would not pay off (a
    single quasi-identifier, or too many observed joint combinations for the
    ``max_cells`` budget) it falls back to one flat estimator per bandwidth
    that still shares the distance matrices.

    Parameters
    ----------
    kernel:
        Kernel function name (default ``"epanechnikov"``, as in the paper).
    batch_size:
        Query rows per vectorised batch for the flat fallback path.
    distance_matrices:
        Optional precomputed per-attribute distance matrices to share.
    max_cells:
        Memory budget (in float64 cells) for the factored path's count tensor
        and joint weight matrix; above it the estimator falls back to the flat
        path.  Purely a speed/memory trade-off.
    """

    def __init__(
        self,
        *,
        kernel: str = "epanechnikov",
        batch_size: int = _DEFAULT_BATCH_SIZE,
        distance_matrices: dict[str, np.ndarray] | None = None,
        max_cells: int = 64_000_000,
    ):
        if batch_size <= 0:
            raise KnowledgeError("batch_size must be positive")
        if max_cells < 0:
            raise KnowledgeError("max_cells must be non-negative")
        self.kernel_name = kernel
        self._kernel = get_kernel(kernel)
        self.batch_size = int(batch_size)
        self.max_cells = int(max_cells)
        self._distance_matrices = dict(distance_matrices) if distance_matrices else {}
        self._table: MicrodataTable | None = None
        self.mode: str | None = None
        # Factored-path state (see fit()).
        self._solo_index: int = 0
        self._rest_indices: list[int] = []
        self._rest_combos: np.ndarray | None = None
        self._count_tensor: np.ndarray | None = None
        self._query_solo: np.ndarray | None = None
        self._query_rest: np.ndarray | None = None
        self._query_inverse: np.ndarray | None = None
        self._query_order: np.ndarray | None = None
        self._solo_bounds: np.ndarray | None = None
        self._overall: np.ndarray | None = None

    # -- fitting --------------------------------------------------------------------
    def fit(self, table: MicrodataTable) -> "BatchedKernelPriorEstimator":
        """Precompute every bandwidth-independent artefact for ``table``."""
        qi_names = list(table.quasi_identifier_names)
        for name in qi_names:
            if name not in self._distance_matrices:
                self._distance_matrices[name] = attribute_distance_matrix(table.domain(name))
        self._table = table
        self._overall = table.sensitive_distribution()
        codes = table.qi_code_matrix()
        sensitive = table.sensitive_codes()
        m = table.sensitive_domain().size

        sizes = [self._distance_matrices[name].shape[0] for name in qi_names]
        if len(qi_names) < 2:
            self.mode = "flat"
            return self
        solo = int(np.argmax(sizes))
        rest = [i for i in range(len(qi_names)) if i != solo]
        rest_combos, rest_of_row = np.unique(codes[:, rest], axis=0, return_inverse=True)
        n_combos = rest_combos.shape[0]
        solo_size = sizes[solo]
        if solo_size * n_combos * m + n_combos * n_combos > self.max_cells:
            self.mode = "flat"
            return self
        self.mode = "factored"
        self._solo_index = solo
        self._rest_indices = rest
        self._rest_combos = rest_combos

        # M[a, r, s]: tuple counts per (solo code, rest combination, sensitive value).
        flat = (codes[:, solo].astype(np.int64) * n_combos + rest_of_row) * m + sensitive
        self._count_tensor = (
            np.bincount(flat, minlength=solo_size * n_combos * m)
            .reshape(solo_size, n_combos * m)
            .astype(np.float64)
        )

        # Unique queries are unique (solo code, rest combination) pairs, grouped
        # by solo code so the per-bandwidth contraction runs as real matmuls.
        pair_key = codes[:, solo].astype(np.int64) * n_combos + rest_of_row
        unique_pairs, self._query_inverse = np.unique(pair_key, return_inverse=True)
        query_solo = unique_pairs // n_combos
        query_rest = unique_pairs % n_combos
        order = np.argsort(query_solo, kind="stable")
        self._query_order = order
        self._query_solo = query_solo[order]
        self._query_rest = query_rest[order]
        self._solo_bounds = np.searchsorted(self._query_solo, np.arange(solo_size + 1))
        return self

    def _require_fitted(self) -> MicrodataTable:
        if self._table is None:
            raise KnowledgeError("estimator is not fitted; call fit(table) first")
        return self._table

    def _bandwidth(self, b: float | Bandwidth) -> Bandwidth:
        table = self._require_fitted()
        if isinstance(b, Bandwidth):
            missing = [name for name in table.quasi_identifier_names if name not in b]
            if missing:
                raise KnowledgeError(
                    f"bandwidth does not cover quasi-identifier attributes {missing}"
                )
            return b
        return Bandwidth.uniform(table.quasi_identifier_names, float(b))

    # -- estimation -----------------------------------------------------------------
    def _factored_prior(self, bandwidth: Bandwidth) -> np.ndarray:
        table = self._table
        qi_names = list(table.quasi_identifier_names)
        m = table.sensitive_domain().size
        solo_name = qi_names[self._solo_index]
        solo_weights = self._kernel(self._distance_matrices[solo_name], bandwidth[solo_name])

        combos = self._rest_combos
        joint = np.ones((combos.shape[0], combos.shape[0]), dtype=np.float64)
        for position, attribute_index in enumerate(self._rest_indices):
            name = qi_names[attribute_index]
            weights = self._kernel(self._distance_matrices[name], bandwidth[name])
            column = combos[:, position]
            joint *= weights[column][:, column]

        # Contract the solo axis first (it is the largest single domain, yet
        # |D_solo|^2 stays tiny next to n^2): K[a_q, r, s].
        solo_size = solo_weights.shape[0]
        contracted = (solo_weights @ self._count_tensor).reshape(solo_size, combos.shape[0], m)

        unique_count = self._query_solo.shape[0]
        numerators = np.empty((unique_count, m), dtype=np.float64)
        for a in range(solo_size):
            lo, hi = self._solo_bounds[a], self._solo_bounds[a + 1]
            if lo == hi:
                continue
            numerators[lo:hi] = joint[self._query_rest[lo:hi]] @ contracted[a]
        denominators = numerators.sum(axis=1)
        degenerate = denominators <= 0.0
        result_sorted = numerators / np.where(degenerate, 1.0, denominators)[:, None]
        if degenerate.any():
            result_sorted[degenerate] = self._overall
        result = np.empty_like(result_sorted)
        result[self._query_order] = result_sorted
        return result[self._query_inverse]

    def prior_for_table(
        self, bandwidths: Sequence[float | Bandwidth]
    ) -> list[PriorBeliefs]:
        """Prior beliefs of every ``Adv(B_i)`` on the fitted table, one pass.

        Returns one :class:`PriorBeliefs` per entry of ``bandwidths``, in
        order; numerically interchangeable with fitting a
        :class:`KernelPriorEstimator` per bandwidth.
        """
        table = self._require_fitted()
        resolved = [self._bandwidth(b) for b in bandwidths]
        sensitive_values = tuple(table.sensitive_domain().values.tolist())
        results: list[PriorBeliefs] = []
        # Identical bandwidths (common in |skyline| > 1 grids) are computed once.
        computed: dict[tuple[tuple[str, float], ...], np.ndarray] = {}
        for bandwidth in resolved:
            key = bandwidth.items()
            matrix = computed.get(key)
            if matrix is None:
                if self.mode == "factored":
                    matrix = self._factored_prior(bandwidth)
                else:
                    matrix = (
                        KernelPriorEstimator(
                            bandwidth,
                            kernel=self.kernel_name,
                            batch_size=self.batch_size,
                            distance_matrices=self._distance_matrices,
                        )
                        .fit(table)
                        .prior_for_table()
                        .matrix
                    )
                computed[key] = matrix
            results.append(
                PriorBeliefs(
                    matrix=matrix,
                    sensitive_values=sensitive_values,
                    description=f"kernel={self.kernel_name}, {bandwidth.describe()}",
                )
            )
        return results


def batched_kernel_priors(
    table: MicrodataTable,
    bandwidths: Sequence[float | Bandwidth],
    *,
    kernel: str = "epanechnikov",
    distance_matrices: dict[str, np.ndarray] | None = None,
    max_cells: int = 64_000_000,
) -> list[PriorBeliefs]:
    """One-call helper: priors for several adversaries sharing the kernel work."""
    estimator = BatchedKernelPriorEstimator(
        kernel=kernel, distance_matrices=distance_matrices, max_cells=max_cells
    )
    return estimator.fit(table).prior_for_table(bandwidths)


def kernel_prior(
    table: MicrodataTable,
    b: float | Bandwidth,
    *,
    kernel: str = "epanechnikov",
    batch_size: int = _DEFAULT_BATCH_SIZE,
    distance_matrices: dict[str, np.ndarray] | None = None,
) -> PriorBeliefs:
    """One-call helper: fit a kernel estimator on ``table`` and return its priors.

    ``b`` may be a scalar (applied uniformly to every QI attribute, the
    ``B' = (b', ..., b')`` adversary of Section V) or a full
    :class:`~repro.knowledge.bandwidth.Bandwidth`.
    """
    if isinstance(b, Bandwidth):
        bandwidth = b
    else:
        bandwidth = Bandwidth.uniform(table.quasi_identifier_names, float(b))
    estimator = KernelPriorEstimator(
        bandwidth, kernel=kernel, batch_size=batch_size, distance_matrices=distance_matrices
    )
    return estimator.fit(table).prior_for_table()


def uniform_prior(table: MicrodataTable) -> PriorBeliefs:
    """The ignorant adversary: every sensitive value equally likely for every tuple.

    This belief is generally *inconsistent* with the data (Section II-D); it is
    provided so that experiments can contrast it with consistent adversaries.
    """
    m = table.sensitive_domain().size
    matrix = np.full((table.n_rows, m), 1.0 / m)
    return PriorBeliefs(
        matrix=matrix,
        sensitive_values=tuple(table.sensitive_domain().values.tolist()),
        description="uniform (ignorant adversary)",
    )


def overall_prior(table: MicrodataTable) -> PriorBeliefs:
    """The t-closeness adversary: the overall sensitive distribution for every tuple."""
    overall = table.sensitive_distribution()
    matrix = np.tile(overall, (table.n_rows, 1))
    return PriorBeliefs(
        matrix=matrix,
        sensitive_values=tuple(table.sensitive_domain().values.tolist()),
        description="overall distribution (t-closeness adversary)",
    )


def mle_prior(table: MicrodataTable) -> PriorBeliefs:
    """Maximum-likelihood prior: the sensitive distribution among identical QI tuples.

    This is the estimator the paper rejects in Section II-B (high variance, no
    knowledge parameter, no semantics); it is the limiting behaviour of the
    kernel estimator as every bandwidth shrinks to zero.
    """
    codes = table.qi_code_matrix()
    sensitive_codes = table.sensitive_codes()
    m = table.sensitive_domain().size
    unique_codes, inverse = np.unique(codes, axis=0, return_inverse=True)
    matrix = np.zeros((unique_codes.shape[0], m), dtype=np.float64)
    np.add.at(matrix, (inverse, sensitive_codes), 1.0)
    matrix /= matrix.sum(axis=1, keepdims=True)
    return PriorBeliefs(
        matrix=matrix[inverse],
        sensitive_values=tuple(table.sensitive_domain().values.tolist()),
        description="maximum-likelihood (exact QI conditioning)",
    )
