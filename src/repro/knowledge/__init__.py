"""Background-knowledge modeling: kernels, bandwidths, prior beliefs, rule mining."""

from repro.knowledge.association import (
    AssociationRule,
    mine_negative_rules,
    mine_positive_rules,
    rule_violation_mass,
)
from repro.knowledge.backend import (
    DEFAULT_MAX_CELLS,
    EstimatorConfig,
    FactoredPriorBackend,
)
from repro.knowledge.bandwidth import Bandwidth
from repro.knowledge.kernels import (
    biweight_kernel,
    epanechnikov_kernel,
    gaussian_kernel,
    get_kernel,
    kernel_names,
    register_kernel,
    triangular_kernel,
    uniform_kernel,
)
from repro.knowledge.prior import (
    BatchedKernelPriorEstimator,
    KernelPriorEstimator,
    PriorBeliefs,
    batched_kernel_priors,
    kernel_prior,
    mle_prior,
    overall_prior,
    uniform_prior,
)
from repro.knowledge.selection import (
    BandwidthScore,
    cross_validation_score,
    select_bandwidth,
)

__all__ = [
    "AssociationRule",
    "Bandwidth",
    "BandwidthScore",
    "BatchedKernelPriorEstimator",
    "DEFAULT_MAX_CELLS",
    "EstimatorConfig",
    "FactoredPriorBackend",
    "KernelPriorEstimator",
    "PriorBeliefs",
    "cross_validation_score",
    "select_bandwidth",
    "batched_kernel_priors",
    "biweight_kernel",
    "epanechnikov_kernel",
    "gaussian_kernel",
    "get_kernel",
    "kernel_names",
    "kernel_prior",
    "mine_negative_rules",
    "mine_positive_rules",
    "mle_prior",
    "overall_prior",
    "register_kernel",
    "rule_violation_mass",
    "triangular_kernel",
    "uniform_kernel",
    "uniform_prior",
]
