"""Bandwidth vectors and the parameterised adversary ``Adv(B)``.

The bandwidth ``B = (B1, ..., Bd)`` is the paper's knob for "how much
background knowledge does the adversary have":

* a **small** ``Bi`` means the adversary has fine-grained knowledge of how the
  sensitive attribute varies with quasi-identifier ``Ai``;
* a **large** ``Bi`` means the adversary only knows coarse information; with
  ``Bi`` covering the whole (normalised) domain and a uniform kernel the prior
  collapses to the overall sensitive distribution (the t-closeness adversary).

A :class:`Bandwidth` is an immutable mapping from quasi-identifier name to a
positive bandwidth value.  The helper constructors cover the common cases used
throughout the paper's experiments (a single scalar ``b`` for all attributes,
or a ``(b1, b2)`` split across two attribute blocks as in Figure 3(b)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.exceptions import KnowledgeError


@dataclass(frozen=True)
class Bandwidth:
    """An immutable per-attribute bandwidth assignment.

    Parameters
    ----------
    values:
        Mapping from quasi-identifier attribute name to a positive bandwidth.
    """

    values: tuple[tuple[str, float], ...]

    def __init__(self, values: Mapping[str, float]):
        items = []
        for name, value in values.items():
            value = float(value)
            if not value > 0.0:
                raise KnowledgeError(
                    f"bandwidth for attribute {name!r} must be positive, got {value}"
                )
            items.append((str(name), value))
        if not items:
            raise KnowledgeError("a bandwidth requires at least one attribute")
        object.__setattr__(self, "values", tuple(items))

    # -- constructors ---------------------------------------------------------------
    @classmethod
    def uniform(cls, attribute_names: Sequence[str], b: float) -> "Bandwidth":
        """The same scalar bandwidth ``b`` for every attribute (``B' = (b', ..., b')``)."""
        return cls({name: b for name in attribute_names})

    @classmethod
    def split(
        cls,
        first_block: Sequence[str],
        b1: float,
        second_block: Sequence[str],
        b2: float,
    ) -> "Bandwidth":
        """Bandwidth ``b1`` on one block of attributes and ``b2`` on another.

        This is the ``B = (b1, b1, b1, b2, b2, b2)`` configuration of
        Figure 3(b).
        """
        overlap = set(first_block) & set(second_block)
        if overlap:
            raise KnowledgeError(f"attribute blocks overlap: {sorted(overlap)}")
        values = {name: b1 for name in first_block}
        values.update({name: b2 for name in second_block})
        return cls(values)

    # -- mapping protocol ------------------------------------------------------------
    def __getitem__(self, name: str) -> float:
        for key, value in self.values:
            if key == name:
                return value
        raise KnowledgeError(f"no bandwidth specified for attribute {name!r}")

    def __contains__(self, name: object) -> bool:
        return any(key == name for key, _ in self.values)

    def __iter__(self) -> Iterator[str]:
        return (key for key, _ in self.values)

    def __len__(self) -> int:
        return len(self.values)

    def items(self) -> tuple[tuple[str, float], ...]:
        """The ``(attribute, bandwidth)`` pairs in declaration order."""
        return self.values

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Names of the attributes this bandwidth covers."""
        return tuple(key for key, _ in self.values)

    def as_dict(self) -> dict[str, float]:
        """Plain dictionary copy of the bandwidth assignment."""
        return dict(self.values)

    def restricted_to(self, names: Sequence[str]) -> "Bandwidth":
        """A new bandwidth containing only the attributes in ``names``."""
        return Bandwidth({name: self[name] for name in names})

    def describe(self) -> str:
        """Human-readable one-line description, e.g. ``b=0.3`` or per-attribute list."""
        distinct = {value for _, value in self.values}
        if len(distinct) == 1:
            return f"b={next(iter(distinct)):g}"
        return ", ".join(f"{name}={value:g}" for name, value in self.values)
