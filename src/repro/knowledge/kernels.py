"""Kernel functions used for background-knowledge estimation (Section II-C).

A kernel ``K`` maps a normalised distance ``x`` (in ``[0, 1]``, see
:mod:`repro.data.distance`) to a non-negative weight.  The bandwidth ``B``
rescales the distance: the weight of a point at distance ``x`` is
``K(x / B)`` up to a constant.  The paper uses the Epanechnikov kernel because
the choice of kernel matters much less than the choice of bandwidth; the
other classical kernels are provided for the ablation benchmark.

All kernels here are implemented as vectorised callables on numpy arrays and
expose a registry (:func:`get_kernel`) so that configuration files and
experiments can refer to kernels by name.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import KnowledgeError

KernelFunction = Callable[[np.ndarray, float], np.ndarray]


def _validate_bandwidth(bandwidth: float) -> float:
    if not np.isfinite(bandwidth) or bandwidth <= 0.0:
        raise KnowledgeError(f"bandwidth must be a positive finite number, got {bandwidth!r}")
    return float(bandwidth)


def epanechnikov_kernel(distances: np.ndarray, bandwidth: float) -> np.ndarray:
    """Epanechnikov kernel ``K(x) = 3/(4B) * (1 - (x/B)^2)`` for ``|x/B| < 1``.

    This is the kernel the paper uses (Section II-C).
    """
    bandwidth = _validate_bandwidth(bandwidth)
    scaled = np.asarray(distances, dtype=np.float64) / bandwidth
    weights = 0.75 / bandwidth * (1.0 - scaled**2)
    return np.where(np.abs(scaled) < 1.0, np.maximum(weights, 0.0), 0.0)


def uniform_kernel(distances: np.ndarray, bandwidth: float) -> np.ndarray:
    """Uniform (boxcar) kernel ``K(x) = 1/(2B)`` for ``|x/B| <= 1``.

    With the bandwidth set to the attribute's domain range this reproduces the
    "t-closeness adversary" special case of Section II-D, where every tuple
    contributes equally and the prior collapses to the overall distribution.
    """
    bandwidth = _validate_bandwidth(bandwidth)
    scaled = np.abs(np.asarray(distances, dtype=np.float64) / bandwidth)
    return np.where(scaled <= 1.0, 0.5 / bandwidth, 0.0)


def triangular_kernel(distances: np.ndarray, bandwidth: float) -> np.ndarray:
    """Triangular kernel ``K(x) = (1 - |x/B|)/B`` for ``|x/B| < 1``."""
    bandwidth = _validate_bandwidth(bandwidth)
    scaled = np.abs(np.asarray(distances, dtype=np.float64) / bandwidth)
    return np.where(scaled < 1.0, (1.0 - scaled) / bandwidth, 0.0)


def biweight_kernel(distances: np.ndarray, bandwidth: float) -> np.ndarray:
    """Biweight (quartic) kernel ``K(x) = 15/(16B) * (1 - (x/B)^2)^2`` for ``|x/B| < 1``."""
    bandwidth = _validate_bandwidth(bandwidth)
    scaled = np.asarray(distances, dtype=np.float64) / bandwidth
    inside = np.maximum(1.0 - scaled**2, 0.0)
    return np.where(np.abs(scaled) < 1.0, 15.0 / 16.0 / bandwidth * inside**2, 0.0)


def gaussian_kernel(distances: np.ndarray, bandwidth: float) -> np.ndarray:
    """Gaussian kernel ``K(x) = exp(-(x/B)^2 / 2) / (B * sqrt(2 pi))`` (unbounded support)."""
    bandwidth = _validate_bandwidth(bandwidth)
    scaled = np.asarray(distances, dtype=np.float64) / bandwidth
    return np.exp(-0.5 * scaled**2) / (bandwidth * np.sqrt(2.0 * np.pi))


_KERNELS: dict[str, KernelFunction] = {
    "epanechnikov": epanechnikov_kernel,
    "uniform": uniform_kernel,
    "triangular": triangular_kernel,
    "biweight": biweight_kernel,
    "gaussian": gaussian_kernel,
}

# Kernels whose weight is *exactly* 0.0 whenever ``|x/B| > 1``.  The closed
# ball ``d <= B`` is therefore a support superset for every one of them
# (uniform includes the boundary; the strict-support kernels evaluate to an
# exact 0.0 there), which is what lets the factored backend share gathered
# distances across bandwidths and evaluate the kernel only inside the mask
# without changing a single bit of the result.  Custom kernels registered at
# runtime are conservatively treated as unbounded unless declared compact.
_COMPACT_SUPPORT: set[str] = {"epanechnikov", "uniform", "triangular", "biweight"}


def has_compact_support(name: str) -> bool:
    """Whether ``name``'s kernel is exactly zero outside ``|x/B| <= 1``."""
    return name.lower() in _COMPACT_SUPPORT


def kernel_names() -> tuple[str, ...]:
    """Names of all registered kernels."""
    return tuple(sorted(_KERNELS))


def get_kernel(name: str) -> KernelFunction:
    """Look up a kernel function by name (case-insensitive).

    Raises
    ------
    KnowledgeError
        If ``name`` does not correspond to a registered kernel.
    """
    try:
        return _KERNELS[name.lower()]
    except KeyError:
        raise KnowledgeError(
            f"unknown kernel {name!r}; available kernels: {', '.join(kernel_names())}"
        ) from None


def register_kernel(
    name: str, function: KernelFunction, *, compact_support: bool = False
) -> None:
    """Register a custom kernel under ``name`` (overwriting is not allowed).

    Declare ``compact_support=True`` only when ``function`` returns an exact
    ``0.0`` for every ``|x/B| > 1`` - the factored backend then skips those
    entries when sharing contractions across bandwidths.
    """
    key = name.lower()
    if key in _KERNELS:
        raise KnowledgeError(f"kernel {name!r} is already registered")
    _KERNELS[key] = function
    if compact_support:
        _COMPACT_SUPPORT.add(key)
