"""Bandwidth selection for the kernel prior estimator.

The paper leaves the choice of the bandwidth vector ``B`` to the data
publisher ("a set of well-chosen parameters").  This module provides two
data-driven helpers that make that choice reproducible:

* :func:`cross_validation_score` - the average held-out log-likelihood of the
  kernel prior at a candidate bandwidth (k-fold cross validation).  This is
  the standard likelihood cross-validation criterion for kernel regression:
  the bandwidth that maximises it is the one whose implied adversary best
  predicts unseen individuals' sensitive values, i.e. the *most realistic*
  consistent adversary.
* :func:`select_bandwidth` - grid search over candidate scalar bandwidths
  using that score.

These utilities extend the paper (they are not part of its evaluation), but
they slot directly into the skyline workflow: the publisher can anchor one
skyline point at the cross-validated bandwidth and add stricter/looser points
around it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.table import MicrodataTable
from repro.exceptions import KnowledgeError
from repro.knowledge.bandwidth import Bandwidth
from repro.knowledge.prior import KernelPriorEstimator

_EPSILON = 1e-12


@dataclass(frozen=True)
class BandwidthScore:
    """Cross-validation result for one candidate bandwidth."""

    b: float
    log_likelihood: float
    n_folds: int


def cross_validation_score(
    table: MicrodataTable,
    b: float | Bandwidth,
    *,
    n_folds: int = 5,
    kernel: str = "epanechnikov",
    seed: int = 0,
) -> float:
    """Average held-out log-likelihood of the kernel prior at bandwidth ``b``.

    The table is split into ``n_folds`` folds; for each fold the prior is
    estimated from the remaining folds and evaluated on the held-out tuples'
    actual sensitive values.  Larger is better.  Probabilities are floored at
    a tiny epsilon so that a single impossible-looking tuple does not send the
    score to minus infinity.
    """
    if n_folds < 2:
        raise KnowledgeError("cross validation requires at least 2 folds")
    if table.n_rows < 2 * n_folds:
        raise KnowledgeError(
            f"table of {table.n_rows} rows is too small for {n_folds}-fold cross validation"
        )
    bandwidth = (
        b if isinstance(b, Bandwidth) else Bandwidth.uniform(table.quasi_identifier_names, float(b))
    )
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(table.n_rows)
    folds = np.array_split(permutation, n_folds)
    sensitive_codes = table.sensitive_codes()

    total = 0.0
    count = 0
    for fold in folds:
        held_out = np.sort(fold)
        training = np.sort(np.setdiff1d(permutation, fold))
        training_table = table.select(training)
        estimator = KernelPriorEstimator(bandwidth, kernel=kernel).fit(training_table)
        held_out_codes = np.column_stack(
            [
                training_table.domain(name).encode(table.column(name)[held_out].tolist())
                for name in table.quasi_identifier_names
            ]
        )
        priors = estimator.prior_for_codes(held_out_codes)
        probabilities = priors[np.arange(held_out.size), sensitive_codes[held_out]]
        total += float(np.log(np.maximum(probabilities, _EPSILON)).sum())
        count += held_out.size
    return total / count


def select_bandwidth(
    table: MicrodataTable,
    *,
    candidates: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.75, 1.0),
    n_folds: int = 5,
    kernel: str = "epanechnikov",
    seed: int = 0,
) -> tuple[float, list[BandwidthScore]]:
    """Grid-search the scalar bandwidth maximising the cross-validation score.

    Returns the best bandwidth and the full list of scores (so callers can
    inspect how flat the likelihood profile is before committing to one
    adversary profile).
    """
    if not candidates:
        raise KnowledgeError("select_bandwidth requires at least one candidate")
    scores = [
        BandwidthScore(
            b=float(candidate),
            log_likelihood=cross_validation_score(
                table, candidate, n_folds=n_folds, kernel=kernel, seed=seed
            ),
            n_folds=n_folds,
        )
        for candidate in candidates
    ]
    best = max(scores, key=lambda score: score.log_likelihood)
    return best.b, scores
