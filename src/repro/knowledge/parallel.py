"""The shared worker pool behind the parallel factored contraction.

NumPy releases the GIL inside its BLAS and gather/elementwise kernels, so a
plain *thread* pool yields real multi-core speedups for the contraction's
matmul-and-gather dominated tiles while keeping the count tensor shared and
zero-copy (a process pool would have to ship it).  One module-level pool is
shared by every backend in the process - concurrent audits, publishers and
serve workers draw from the same threads instead of each spawning their own.

``jobs`` resolution (the one definition every consumer goes through):

* an explicit positive integer is used as-is (``jobs=1`` selects the exact
  serial code path - no pool, no task objects - and is the bit-identical
  equivalence reference);
* ``None`` means *auto*: the ``REPRO_JOBS`` environment variable when set
  (how CI and the nightly workflow pin thread counts), otherwise
  ``os.cpu_count()``.

Tasks are only ever submitted from outside the pool (the backend never nests
pool work inside pool work), so a bounded pool cannot deadlock on itself.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

from repro.exceptions import KnowledgeError

#: Environment variable supplying the default worker count (CI/nightly pin it).
JOBS_ENV = "REPRO_JOBS"

_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None
_pool_size = 0


def parse_jobs(value: object) -> int:
    """Validate a jobs count: a positive integer (no floats, no zero).

    Raises
    ------
    KnowledgeError
        If ``value`` is not a positive integer.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        try:
            number = int(str(value))
        except (TypeError, ValueError):
            raise KnowledgeError(
                f"jobs must be a positive integer, got {value!r}"
            ) from None
    else:
        number = value
    if number < 1:
        raise KnowledgeError(f"jobs must be a positive integer, got {value!r}")
    return number


def default_jobs() -> int:
    """The auto worker count: ``REPRO_JOBS`` when set, else ``os.cpu_count()``."""
    env = os.environ.get(JOBS_ENV)
    if env is not None and env.strip():
        return parse_jobs(env.strip())
    return os.cpu_count() or 1


def resolve_jobs(jobs: int | None) -> int:
    """Resolve a ``jobs`` knob to a concrete positive worker count."""
    if jobs is None:
        return default_jobs()
    return parse_jobs(jobs)


def shared_pool(jobs: int) -> ThreadPoolExecutor:
    """The process-wide worker pool, grown to at least ``jobs`` workers.

    The pool only ever grows (to the largest count any backend asked for);
    its threads are daemonic workers that idle for free, so shrinking is
    never worth the churn.
    """
    global _pool, _pool_size
    with _lock:
        if _pool is None or _pool_size < jobs:
            previous = _pool
            _pool = ThreadPoolExecutor(
                max_workers=jobs, thread_name_prefix="repro-contract"
            )
            _pool_size = jobs
            if previous is not None:
                previous.shutdown(wait=False)
        return _pool


def run_tasks(tasks: Sequence[Callable[[], object]], jobs: int) -> list[object]:
    """Run independent thunks, in order; serial when ``jobs`` (or tasks) is 1.

    The serial branch calls each thunk inline - exactly the pre-pool loop -
    so ``jobs=1`` keeps the bit-identical reference path.  The parallel
    branch submits everything to the shared pool and gathers results in
    submission order; the first raised exception propagates after all tasks
    settle (each task's work is independent by contract, so a failed sibling
    cannot corrupt shared state).
    """
    if jobs <= 1 or len(tasks) <= 1:
        return [task() for task in tasks]
    pool = shared_pool(jobs)
    futures = [pool.submit(task) for task in tasks]
    return [future.result() for future in futures]


__all__ = [
    "JOBS_ENV",
    "default_jobs",
    "parse_jobs",
    "resolve_jobs",
    "run_tasks",
    "shared_pool",
]
