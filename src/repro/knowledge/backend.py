"""The factored count-tensor contraction backend behind every kernel-prior path.

Estimating the adversary's prior belief function (Section II-B) is the hot
path of every stage of the pipeline - publishing, skyline auditing and
streaming republication all reduce to Nadaraya-Watson sums

.. math::

    \\hat P_{pri}(q) \\propto \\sum_{t_j \\in T} \\prod_i K_i(d_i(q_i, t_j[A_i]))
                             \\, P(t_j)

over the whole table.  Evaluated naively this is an ``O(n^2 d)`` sweep *per
bandwidth*.  This module holds the one shared backend that every estimator
view (:class:`~repro.knowledge.prior.KernelPriorEstimator`,
:class:`~repro.knowledge.prior.BatchedKernelPriorEstimator`) delegates to:

**Factored storage.**  The *solo* attribute (the largest single domain) is
split off from the *rest* of the quasi-identifiers.  The observed rest
combinations are deduplicated into *slots* and the table collapses into a
count tensor ``M[a, r, s]`` = number of tuples with solo code ``a``, rest
slot ``r`` and sensitive value ``s``.  All of this is bandwidth-independent
and shared across every estimation.

**Per-bandwidth contraction.**  A bandwidth only contributes tiny
per-attribute kernel matrices.  The numerator of every deduplicated query
``(a_q, r_q)`` is the two-step contraction ``N = J[r_q, :] @ (W_solo @ M)``
where ``J`` is the joint kernel weight between rest combinations - exactly
the flat Nadaraya-Watson sum, reassociated.

**Hierarchical multi-block contraction.**  The joint matrix has
``n_combos^2`` cells, which wide or high-cardinality schemas blow past any
budget.  Instead of abandoning the factorisation, the rest attributes are
split - greedily, in schema order - into *blocks* whose observed
per-block combination counts ``c_b`` satisfy ``c_b^2 <= max_cells``.  Each
block gets its own small joint matrix ``J_b`` (the kernel product over just
its attributes) and the full joint row of a query is recovered on the fly as
the Hadamard chain ``prod_b J_b[beta_b(r_q), beta_b(r)]``, materialised only
in row tiles bounded by ``max_cells`` cells.  The chained contraction is
algebraically identical to the single-joint contraction (products are merely
re-grouped per block), so blocked priors match the flat reference to
floating-point round-off while wide schemas keep the factored speedup: per
bandwidth the work is ``O(n_q n_combos (k + m))`` for ``k`` blocks instead
of the flat ``O(n_q n (d + m))``.  A single attribute whose own observed
combinations exceed the budget forms a singleton block (its kernel matrix
exists anyway at ``|D_i|^2``).  The flat sweep survives only as the
``max_cells == 0`` equivalence reference - plus an absolute memory guard
(``max_count_cells``) for pathological schemas whose count tensor itself
would not fit, where slow-but-bounded beats an out-of-memory abort.

**Parallel contraction.**  The per-block joint builds and the per-query
tile chain are embarrassingly parallel, and NumPy releases the GIL inside
its BLAS/gather kernels, so both hot loops dispatch over the shared thread
pool of :mod:`repro.knowledge.parallel`, sized by ``EstimatorConfig.jobs``
(default ``os.cpu_count()``, overridable via ``REPRO_JOBS``).  Every tile
task writes a disjoint numerator slice and performs exactly the serial
tile's arithmetic, so threaded results are *bitwise identical* to
``jobs=1`` regardless of scheduling - the serial path survives untouched as
the equivalence reference.  Compact-support kernels additionally share each
block's gathered per-attribute distance sub-matrices across bandwidths
(``share_bandwidths``): the joint at bandwidth ``B`` is the kernel applied
elementwise to the cached distances, restricted to the closed support mask
``d <= B`` when sparse - elementwise ufuncs are value-deterministic and the
masked-out entries are exact zeros, so this too is bitwise identical to the
dense rebuild.

**Incremental deltas.**  Appending rows is additive in ``M``; with
``incremental=True`` the per-bandwidth artefacts (block joints, the
solo-contracted tensor and the per-query numerators) are cached and
:meth:`FactoredPriorBackend.append_rows` folds a batch in by recontracting
only the queries whose compact-support kernel neighbourhood contains an
appended row - every other query keeps a bitwise-identical numerator.

**Full-lifecycle deltas.**  Retracting and correcting rows are just as
additive: :meth:`FactoredPriorBackend.remove_rows` subtracts the removed
rows' counts from ``M`` and :meth:`FactoredPriorBackend.update_rows` applies
the paired (negative old cell, positive new cell) deltas of an in-place
correction.  The count tensor holds small integers in float64, so these
subtractions are *exact* - and instead of delta-accumulating the cached
numerators (where a numerator that should become exactly zero could survive
as a cancellation residue and poison the normalisation), every query with a
positive kernel weight towards a touched cell is **fully recontracted** from
the updated count tensor.  Untouched queries keep their cached numerators
(every changed cell contributes an exact ``0.0`` to them), so maintained
priors match a from-scratch fit of the post-batch table to floating-point
round-off.  A removal that empties a rest slot *retires* it in place: the
slot's exactly-zero counts contribute exact zeros to every contraction, so
the layout does not shift and untouched queries stay bitwise stable.  The
backend refits once retired slots accumulate past ``_MAX_RETIRED_FRACTION``
of the layout (the empty-slot refit valve, amortised so realistic delete
streams stay incremental), or when slot growth breaches the count-tensor /
block-budget guards.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

import numpy as np

from repro.data.distance import attribute_distance_matrix
from repro.data.table import MicrodataTable
from repro.exceptions import KnowledgeError
from repro.knowledge.bandwidth import Bandwidth
from repro.knowledge.kernels import get_kernel, has_compact_support
from repro.knowledge.parallel import parse_jobs, resolve_jobs, run_tasks
from repro.obs.tracing import current_tracer

DEFAULT_MAX_CELLS = 64_000_000
DEFAULT_BATCH_SIZE = 256
DEFAULT_MAX_COUNT_CELLS = 128_000_000
# Retired (exactly-zero) rest slots tolerated before a removal-heavy stream
# refits into a compact layout; see the module docstring.
_MAX_RETIRED_FRACTION = 0.25
_MIN_RETIRED_SLOTS = 16


def backend_name(max_cells: int) -> str:
    """The backend a ``max_cells`` budget selects: ``"flat"`` only for ``0``.

    The single definition of backend identity - prior caches key on it.
    """
    return "flat" if max_cells == 0 else "factored"


@dataclass(frozen=True)
class EstimatorConfig:
    """The one estimator configuration shared by every kernel-prior consumer.

    Sessions, the skyline audit engine, the incremental publisher and the CLI
    all parameterise prior estimation through this object (or its fields), so
    there is a single definition of what a "kernel estimator" is.

    Parameters
    ----------
    kernel:
        Kernel function name (default ``"epanechnikov"``, as in the paper).
    max_cells:
        Cell budget for the *per-bandwidth contraction working set*: block
        joint matrices and materialised joint-row tiles stay below this many
        float64 cells.  It deliberately does **not** bound the factored count
        tensor, which scales linearly with the data (``solo domain x
        observed rest combinations x m``) - shrinking the budget makes the
        blocks and tiles smaller, never the storage.  ``0`` selects the flat
        ``O(n^2 d)`` reference sweep instead (kept only for small-size
        equivalence checks).
    batch_size:
        Query rows per vectorised batch of the flat reference sweep.
    max_count_cells:
        Hard memory guard on the count tensor (and the per-bandwidth
        contracted tensor of the same shape): fits whose ``solo x combos x
        m`` storage would exceed this many float64 cells fall back to the
        flat sweep, which is slow but memory-bounded.  An absolute ceiling
        (~1 GB by default), independent of ``max_cells`` so tiny contraction
        budgets still take the blocked factored path.
    jobs:
        Worker threads for the parallel contraction.  ``None`` (the default)
        resolves to the ``REPRO_JOBS`` environment variable when set, else
        ``os.cpu_count()``; ``1`` selects the serial reference path.  Must be
        a positive integer when given.  Threading never changes results -
        the ``jobs=1`` and ``jobs=N`` priors are bitwise identical.
    share_bandwidths:
        Share each block's gathered distance sub-matrices across bandwidths
        so K bandwidths stop paying K full joint rebuilds (compact-support
        kernels additionally evaluate only inside the ``d <= B`` support
        mask).  Bitwise identical to the dense rebuild; the switch exists
        for the equivalence suite and the sharing on/off benchmark.
    chunk_rows:
        Rows per chunk when fitting from a
        :class:`~repro.data.source.TableSource` (the out-of-core path).
        ``None`` defers to the source's own default.  Chunked fits are
        *bitwise identical* to the all-in-RAM fit - see
        :meth:`FactoredPriorBackend.fit`.
    """

    kernel: str = "epanechnikov"
    max_cells: int = DEFAULT_MAX_CELLS
    batch_size: int = DEFAULT_BATCH_SIZE
    max_count_cells: int = DEFAULT_MAX_COUNT_CELLS
    jobs: int | None = None
    share_bandwidths: bool = True
    chunk_rows: int | None = None

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise KnowledgeError("batch_size must be positive")
        if self.max_cells < 0:
            raise KnowledgeError("max_cells must be non-negative")
        if self.max_count_cells <= 0:
            raise KnowledgeError("max_count_cells must be positive")
        if self.jobs is not None:
            parse_jobs(self.jobs)
        if self.chunk_rows is not None and self.chunk_rows < 1:
            raise KnowledgeError("chunk_rows must be a positive number of rows")

    @property
    def backend_name(self) -> str:
        """``"factored"`` or ``"flat"`` - what this configuration selects."""
        return backend_name(self.max_cells)


def resolve_config(config: EstimatorConfig | None = None, **overrides) -> EstimatorConfig:
    """Merge legacy per-knob keyword overrides into one :class:`EstimatorConfig`.

    The deprecation shim behind every consumer that grew a ``config=``
    parameter (sessions, estimators, the audit engine, the publisher): the
    scattered keyword knobs (``kernel=``, ``max_cells=``, ``jobs=``, ...)
    stay accepted, and any that were actually supplied (non-``None``)
    override the matching field of ``config`` (or of a default config).
    Callers migrating to ``config=`` simply stop passing the keywords.
    """
    base = config if config is not None else EstimatorConfig()
    supplied = {name: value for name, value in overrides.items() if value is not None}
    return replace(base, **supplied) if supplied else base


@dataclass
class _RestBlock:
    """One block of rest attributes in the hierarchical contraction.

    ``positions`` are column indices into the rest-combination matrix (and
    ``names`` the matching attribute names); ``combos`` holds the observed
    per-block combinations in stable id order (appended combinations take
    the next ids, never reshuffling); ``code_of_slot`` maps every rest slot
    to its block combination id (allocated at the shared slot capacity).
    """

    positions: tuple[int, ...]
    names: tuple[str, ...]
    n_combos: int
    combos: np.ndarray
    code_of_slot: np.ndarray = field(repr=False)


class FactoredPriorBackend:
    """Shared contraction backend for kernel prior estimation.

    One backend is fitted per table and serves every bandwidth: the estimator
    classes in :mod:`repro.knowledge.prior` are thin views over it.  See the
    module docstring for the factorisation, the blocking scheme and the
    incremental delta path.

    Parameters
    ----------
    config:
        The :class:`EstimatorConfig` (kernel, ``max_cells`` budget, flat
        batch size).
    distance_matrices:
        Optional precomputed per-attribute distance matrices to share
        (matrices cached against an outgrown domain are replaced at fit).
    incremental:
        Cache per-bandwidth contraction state so :meth:`append_rows` updates
        it in place (costs memory per distinct bandwidth; off by default).
    """

    def __init__(
        self,
        config: EstimatorConfig | None = None,
        *,
        distance_matrices: dict[str, np.ndarray] | None = None,
        incremental: bool = False,
    ):
        self.config = config if config is not None else EstimatorConfig()
        self._kernel = get_kernel(self.config.kernel)
        self._jobs = resolve_jobs(self.config.jobs)
        self._compact_support = has_compact_support(self.config.kernel)
        # Per-block gathered distance sub-matrices shared across bandwidths
        # (share_bandwidths); keyed by block index, tagged with the block's
        # combo count so growth invalidates the entry.
        self._block_distance_cache: dict[int, tuple[int, dict[str, np.ndarray]]] = {}
        self.incremental = bool(incremental)
        self._distance_matrices = dict(distance_matrices) if distance_matrices else {}
        self._table: MicrodataTable | None = None
        self.mode: str | None = None
        self._overall: np.ndarray | None = None
        # Factored state.  Rest combinations live in *slot* order: slots
        # 0..n_combos-1 are assigned in lexicographic order at fit time and
        # appended combinations take the next free slots, so growing the
        # state never reshuffles the (large) per-combination arrays.
        self._solo_index: int = 0
        self._rest_indices: list[int] = []
        self._n_combos: int = 0
        self._rest_combos: np.ndarray | None = None  # (capacity, d-1), slot order
        self._slot_totals: np.ndarray | None = None  # (capacity,) rows per slot
        self._blocks: list[_RestBlock] = []
        self._count_storage: np.ndarray | None = None  # (solo, capacity, m)
        self._solo_of_row: np.ndarray | None = None
        self._slot_of_row: np.ndarray | None = None
        self._pair_keys: np.ndarray | None = None
        self._query_solo: np.ndarray | None = None
        self._query_rest: np.ndarray | None = None  # slot ids
        self._query_inverse: np.ndarray | None = None
        # Flat-reference state.
        self._qi_codes: np.ndarray | None = None
        self._one_hot: np.ndarray | None = None
        self._flat_unique: np.ndarray | None = None
        self._flat_inverse: np.ndarray | None = None
        # Per-bandwidth contraction caches (incremental mode only), keyed by
        # Bandwidth.items(): {"bandwidth", "block_joints", "contracted_storage",
        # "numerators"} with contracted storage at the shared slot capacity.
        self._contractions: dict[tuple, dict] = {}

    # -- small helpers ----------------------------------------------------------------
    @property
    def _count_tensor(self) -> np.ndarray:
        """Active ``(solo, n_combos, m)`` view of the count storage."""
        return self._count_storage[:, : self._n_combos, :]

    @property
    def blocks(self) -> tuple[tuple[str, ...], ...]:
        """Attribute names of each rest block of the hierarchical contraction."""
        return tuple(block.names for block in self._blocks)

    @property
    def n_blocks(self) -> int:
        """Number of rest blocks (0 for single-QI tables and flat mode)."""
        return len(self._blocks)

    @property
    def jobs(self) -> int:
        """The resolved worker-thread count (``config.jobs`` or the auto default)."""
        return self._jobs

    @property
    def table(self) -> MicrodataTable | None:
        """The fitted table (``None`` before :meth:`fit`)."""
        return self._table

    def _require_fitted(self) -> MicrodataTable:
        if self._table is None:
            raise KnowledgeError("estimator is not fitted; call fit(table) first")
        return self._table

    def _capacity(self, n_combos: int) -> int:
        """Slot capacity: headroom so appends rarely reallocate (incremental only)."""
        if not self.incremental:
            return n_combos
        return n_combos + max(128, n_combos // 4)

    def _tile_rows(self, n_columns: int) -> int:
        """Contraction tile height bounding the materialised joint rows."""
        return max(1, max(1, self.config.max_cells) // max(1, n_columns))

    def resolve_bandwidth(self, b: float | Bandwidth) -> Bandwidth:
        """Normalise ``b`` to a full bandwidth covering every fitted QI attribute."""
        table = self._require_fitted()
        if isinstance(b, Bandwidth):
            missing = [name for name in table.quasi_identifier_names if name not in b]
            if missing:
                raise KnowledgeError(
                    f"bandwidth does not cover quasi-identifier attributes {missing}"
                )
            return b
        return Bandwidth.uniform(table.quasi_identifier_names, float(b))

    def _bandwidth_weights(self, bandwidth: Bandwidth, name: str) -> np.ndarray:
        return self._kernel(self._distance_matrices[name], bandwidth[name])

    def _same_domains(self, table: MicrodataTable) -> bool:
        fitted = self._table
        if tuple(table.quasi_identifier_names) != tuple(fitted.quasi_identifier_names):
            return False
        names = list(table.quasi_identifier_names) + [table.sensitive_name]
        return all(
            np.array_equal(table.domain(name).values, fitted.domain(name).values)
            for name in names
        )

    # -- fitting ----------------------------------------------------------------------
    def fit(self, table) -> "FactoredPriorBackend":
        """Precompute every bandwidth-independent artefact for ``table``.

        ``table`` is a :class:`~repro.data.table.MicrodataTable` or any
        :class:`~repro.data.source.TableSource`.  A source is fitted
        *chunk by chunk* (``config.chunk_rows`` rows at a time): the first
        chunk takes the ordinary fit and every further chunk folds in
        through the exact append deltas, deferring nothing to approximation
        - integer counts in float64 add exactly - and a final slot
        canonicalisation permutes the arrival-ordered rest slots into the
        lexicographic layout the one-pass fit builds, so the streamed fit
        is **bitwise identical** to fitting the fully resident table while
        only ever holding one chunk's values in RAM.
        """
        with current_tracer().span("backend.fit", rows=table.n_rows) as fit_span:
            if isinstance(table, MicrodataTable):
                self._fit(table)
            else:
                self._fit_streaming(table)
        fit_span.annotate(mode=self.mode, blocks=len(self._blocks))
        return self

    def _fit(self, table: MicrodataTable) -> None:
        qi_names = list(table.quasi_identifier_names)
        for name in qi_names:
            cached = self._distance_matrices.get(name)
            if cached is None or cached.shape[0] != table.domain(name).size:
                # Also replaces matrices cached against an outgrown domain
                # (refitting after a stream append introduced new values).
                self._distance_matrices[name] = attribute_distance_matrix(table.domain(name))
        self._table = table
        self._overall = table.sensitive_distribution()
        self._contractions = {}
        self._block_distance_cache = {}
        codes = table.qi_code_matrix().astype(np.int64)
        sensitive = table.sensitive_codes().astype(np.int64)
        m = table.sensitive_domain().size

        sizes = [self._distance_matrices[name].shape[0] for name in qi_names]
        solo = int(np.argmax(sizes))
        rest = [i for i in range(len(qi_names)) if i != solo]
        rest_combos, slot_of_row = np.unique(codes[:, rest], axis=0, return_inverse=True)
        n_combos = rest_combos.shape[0]

        # Refitting may switch modes (e.g. append growth tripping the count
        # guard); drop the other mode's large artefacts so they cannot keep
        # roughly a second copy of the state alive.
        self._count_storage = None
        self._rest_combos = None
        self._slot_totals = None
        self._blocks = []
        self._solo_of_row = self._slot_of_row = None
        self._pair_keys = self._query_solo = self._query_rest = self._query_inverse = None
        self._qi_codes = self._one_hot = None
        self._flat_unique = self._flat_inverse = None

        # The count tensor scales with the data, not with max_cells; fits
        # whose storage would exceed the absolute guard fall back to the
        # flat sweep (slow but memory-bounded), as does max_cells == 0 (the
        # explicit equivalence-reference switch).
        if (
            self.config.max_cells == 0
            or sizes[solo] * n_combos * m > self.config.max_count_cells
        ):
            self.mode = "flat"
            self._qi_codes = codes
            one_hot = np.zeros((table.n_rows, m), dtype=np.float64)
            one_hot[np.arange(table.n_rows), sensitive] = 1.0
            self._one_hot = one_hot
            self._flat_unique, self._flat_inverse = np.unique(
                codes, axis=0, return_inverse=True
            )
            return

        self.mode = "factored"
        self._solo_index = solo
        self._rest_indices = rest
        self._n_combos = n_combos
        capacity = self._capacity(n_combos)
        self._rest_combos = np.zeros((capacity, len(rest)), dtype=rest_combos.dtype)
        self._rest_combos[:n_combos] = rest_combos
        self._blocks = self._build_blocks(rest_combos, [qi_names[i] for i in rest], capacity)
        self._solo_of_row = codes[:, solo]
        self._slot_of_row = slot_of_row.astype(np.int64)

        # M[a, r, s]: tuple counts per (solo code, rest slot, sensitive value).
        solo_size = sizes[solo]
        flat = (self._solo_of_row * n_combos + self._slot_of_row) * m + sensitive
        self._count_storage = np.zeros((solo_size, capacity, m), dtype=np.float64)
        self._count_storage[:, :n_combos, :] = (
            np.bincount(flat, minlength=solo_size * n_combos * m)
            .reshape(solo_size, n_combos, m)
            .astype(np.float64)
        )
        self._slot_totals = np.zeros(capacity, dtype=np.float64)
        self._slot_totals[:n_combos] = self._count_storage[:, :n_combos, :].sum(axis=(0, 2))
        self._rebuild_query_index()

    def _fit_streaming(self, source) -> None:
        """Fit from a chunked :class:`~repro.data.source.TableSource`.

        Chunks fold through :meth:`_append_rows` against a growing
        codes-backed table (code buffers are preallocated at the source's
        declared row count, so each fold sees a copy-free view); the final
        :meth:`_canonicalise_slots` restores the lexicographic slot layout.
        Only the active chunk's values are ever resident.  The flat
        reference (``max_cells == 0``, or the count-tensor guard tripping
        mid-stream) needs the whole code matrix anyway, so it fits the
        accumulated table in one pass at the end.
        """
        from repro.data.source import as_table

        if self.config.max_cells == 0:
            self._fit(as_table(source))
            return
        schema = source.schema
        domains = source.domains()
        buffers = {
            name: np.empty(source.n_rows, dtype=np.int32) for name in schema.names
        }
        grown: MicrodataTable | None = None
        first = True
        cursor = 0
        for chunk in source.iter_chunks(self.config.chunk_rows):
            stop = cursor + chunk.n_rows
            if stop > source.n_rows:
                raise KnowledgeError(
                    f"table source yielded more rows than its declared {source.n_rows}"
                )
            for name in schema.names:
                buffers[name][cursor:stop] = chunk.codes(name)
            cursor = stop
            grown = MicrodataTable.from_codes(
                schema, {name: buffers[name][:stop] for name in schema.names}, domains
            )
            if first:
                first = False
                self._fit(grown)
            elif self.mode == "factored":
                # A fold that trips a growth guard refits the partial table
                # (possibly flipping to flat); remaining chunks then just
                # accumulate codes for the final one-pass fit below.
                self._append_rows(grown)
        if cursor != source.n_rows:
            raise KnowledgeError(
                f"table source yielded {cursor} rows but declared {source.n_rows}"
            )
        if self.mode == "factored":
            self._canonicalise_slots()
        elif self._table is not grown:
            self._fit(grown)

    def _canonicalise_slots(self) -> None:
        """Permute arrival-ordered rest slots into the one-pass lexicographic layout.

        A streamed fit assigns slots in arrival order (first chunk
        lexicographic, later combinations appended); ``np.unique(...,
        axis=0)`` over the whole table would have sorted them.  Slot order
        feeds the contraction's summation order, so bitwise parity with the
        resident fit requires the same layout: sort the combinations
        (``np.lexsort`` over the columns, the order ``np.unique`` uses),
        permute the count storage and per-row slot ids, and re-derive the
        blocks and query index exactly as :meth:`_fit` would.  All pure
        permutation and recomputation from identical integer counts - no
        arithmetic on the counts themselves - hence bitwise.
        """
        n_combos = self._n_combos
        combos = self._rest_combos[:n_combos]
        order = np.lexsort(combos.T[::-1])
        rank = np.empty(n_combos, dtype=np.int64)
        rank[order] = np.arange(n_combos, dtype=np.int64)
        canonical = combos[order]
        capacity = self._capacity(n_combos)
        rest_combos = np.zeros((capacity, combos.shape[1]), dtype=combos.dtype)
        rest_combos[:n_combos] = canonical
        self._rest_combos = rest_combos
        storage = np.zeros(
            (self._count_storage.shape[0], capacity, self._count_storage.shape[2]),
            dtype=np.float64,
        )
        storage[:, :n_combos, :] = self._count_storage[:, :n_combos, :][:, order, :]
        self._count_storage = storage
        totals = np.zeros(capacity, dtype=np.float64)
        totals[:n_combos] = storage[:, :n_combos, :].sum(axis=(0, 2))
        self._slot_totals = totals
        self._slot_of_row = rank[self._slot_of_row]
        qi_names = list(self._table.quasi_identifier_names)
        self._blocks = self._build_blocks(
            canonical, [qi_names[i] for i in self._rest_indices], capacity
        )
        self._block_distance_cache = {}
        self._contractions = {}
        self._overall = self._table.sensitive_distribution()
        self._rebuild_query_index()

    def _build_blocks(
        self, rest_combos: np.ndarray, rest_names: list[str], capacity: int
    ) -> list[_RestBlock]:
        """Block the rest attributes by observed-combination growth.

        Instead of taking attributes in schema order, each block seeds on the
        highest-cardinality unplaced attribute and greedily adds the partner
        whose *realized* joint combination count grows least (measured on the
        fitted combos via composed integer keys, so correlated attributes end
        up together and the per-block ``c_b^2`` stays small), while the
        candidate keeps ``c^2 <= max_cells``.  Positions within a block stay
        sorted in schema order, so a schema whose whole rest set fits one
        block yields exactly the single block the schema-order layout built -
        unique-count monotonicity guarantees every prefix fits too.  A lone
        attribute over budget still forms a singleton block (its kernel
        matrix exists anyway at ``|D_i|^2``), so the factored path never
        degrades to the flat sweep.  Blocks later grow in place via
        :meth:`_grow_block`; a grown multi-attribute block breaching the
        budget triggers a refit, which re-derives the layout from the grown
        combos (the existing grow/retire guards).
        """
        budget = max(1, self.config.max_cells)
        n_columns = rest_combos.shape[1]
        blocks: list[_RestBlock] = []
        column_codes: list[np.ndarray] = []
        cardinality: list[int] = []
        for column in range(n_columns):
            uniq, codes = np.unique(rest_combos[:, column], return_inverse=True)
            column_codes.append(codes.astype(np.int64))
            cardinality.append(int(uniq.shape[0]))

        def close(positions: list[int]) -> None:
            ordered = sorted(positions)
            combos, codes = np.unique(
                rest_combos[:, ordered], axis=0, return_inverse=True
            )
            code_of_slot = np.zeros(capacity, dtype=np.int64)
            code_of_slot[: rest_combos.shape[0]] = codes
            blocks.append(
                _RestBlock(
                    positions=tuple(ordered),
                    names=tuple(rest_names[p] for p in ordered),
                    n_combos=combos.shape[0],
                    combos=combos,
                    code_of_slot=code_of_slot,
                )
            )

        remaining = list(range(n_columns))
        while remaining:
            seed = max(remaining, key=lambda c: (cardinality[c], -c))
            remaining.remove(seed)
            positions = [seed]
            keys = column_codes[seed]
            n_current = cardinality[seed]
            while remaining and n_current * n_current <= budget:
                best = best_count = best_keys = None
                for candidate in remaining:
                    composed = keys * cardinality[candidate] + column_codes[candidate]
                    count = int(np.unique(composed).shape[0])
                    if best_count is None or count < best_count:
                        best, best_count, best_keys = candidate, count, composed
                if best_count * best_count > budget:
                    break
                positions.append(best)
                remaining.remove(best)
                # Re-key to compact ids so composed keys cannot overflow.
                _, keys = np.unique(best_keys, return_inverse=True)
                keys = keys.astype(np.int64)
                n_current = best_count
            close(positions)
        return blocks

    def _rebuild_query_index(self) -> None:
        """Derive the unique (solo, rest slot) query structures from the rows.

        Pair keys ascend with (solo code, slot), so the unique array is
        already grouped by solo code - exactly the layout the per-bandwidth
        contraction wants for its per-solo matmuls.  The slot multiplier is
        the current combination count; slots are stable across appends, so
        re-keying old query arrays with a newer multiplier keeps their order.
        """
        multiplier = max(1, self._n_combos)
        pair_key = self._solo_of_row * multiplier + self._slot_of_row
        self._pair_keys, self._query_inverse = np.unique(pair_key, return_inverse=True)
        self._query_solo = self._pair_keys // multiplier
        self._query_rest = self._pair_keys % multiplier

    # -- appending --------------------------------------------------------------------
    def append_rows(self, table: MicrodataTable) -> str:
        """Grow the fitted state to ``table`` (the previous table plus appended rows).

        ``table`` must extend the fitted table: its first ``n`` rows are the
        fitted rows and every attribute keeps its domain (append-only streams
        with stable domains).  The appended rows' counts are folded into the
        count tensor - and, in ``incremental`` mode, into every cached
        per-bandwidth contraction - so the next estimation only recontracts
        queries whose kernel neighbourhood actually changed.

        Returns ``"incremental"`` when the factored state was updated in
        place, or ``"refit"`` when a full :meth:`fit` was required (flat
        reference mode, or changed domains).
        """
        with current_tracer().span("backend.append_rows", rows=table.n_rows) as span:
            result = self._append_rows(table)
        span.annotate(result=result)
        return result

    def _append_rows(self, table: MicrodataTable) -> str:
        fitted = self._require_fitted()
        n_previous = fitted.n_rows
        if table.n_rows < n_previous:
            raise KnowledgeError(
                f"append_rows expects a grown table; got {table.n_rows} rows after {n_previous}"
            )
        if self.mode != "factored" or not self._same_domains(table):
            self.fit(table)
            return "refit"
        if table.n_rows == n_previous:
            self._table = table
            return "incremental"

        m = table.sensitive_domain().size
        codes_new = table.qi_code_matrix()[n_previous:].astype(np.int64)
        sensitive_new = table.sensitive_codes()[n_previous:].astype(np.int64)
        delta_solo = codes_new[:, self._solo_index]
        rest_new = codes_new[:, self._rest_indices]

        delta_rest = self._assign_fresh_slots(rest_new, m)
        if delta_rest is None:
            # Growth breached a guard; refit (which takes the flat path
            # under the same count-tensor guard).
            self.fit(table)
            return "refit"
        n_combos = self._n_combos
        solo_size = self._count_storage.shape[0]

        # Count the batch only over the touched rest slots - O(batch), not
        # O(count tensor) - and scatter the block into the storage.
        rest_touched = np.unique(delta_rest)
        touched_position = np.searchsorted(rest_touched, delta_rest)
        flat = (delta_solo * rest_touched.size + touched_position) * m + sensitive_new
        delta_counts = (
            np.bincount(flat, minlength=solo_size * rest_touched.size * m)
            .reshape(solo_size, rest_touched.size, m)
            .astype(np.float64)
        )
        self._count_storage[:, rest_touched, :] += delta_counts
        self._slot_totals[rest_touched] += delta_counts.sum(axis=(0, 2))
        cells = np.unique(delta_solo * n_combos + delta_rest)
        cell_solo = cells // n_combos
        cell_rest = cells % n_combos

        self._table = table
        self._overall = table.sensitive_distribution()
        self._solo_of_row = np.concatenate([self._solo_of_row, delta_solo])
        self._slot_of_row = np.concatenate([self._slot_of_row, delta_rest])
        previous_solo, previous_rest = self._query_solo, self._query_rest
        self._rebuild_query_index()
        previous_pairs = previous_solo * max(1, self._n_combos) + previous_rest
        for cache in self._contractions.values():
            self._update_cache(
                cache, delta_counts, rest_touched, cell_solo, cell_rest, previous_pairs
            )
        return "incremental"

    # -- removing and updating --------------------------------------------------------
    def remove_rows(self, table: MicrodataTable, removed: np.ndarray) -> str:
        """Shrink the fitted state to ``table`` (the fitted table minus ``removed``).

        ``removed`` holds row positions of the *fitted* table; ``table`` must
        be the fitted table with exactly those rows dropped and every domain
        unchanged (e.g. ``fitted.select(kept)``).  The removed rows' counts
        are subtracted from the count tensor - exactly, since counts are
        small integers in float64 - and, in ``incremental`` mode, every query
        whose kernel neighbourhood contained a removed row is fully
        recontracted from the updated tensor (see the module docstring for
        why removals never delta-accumulate numerators).

        Returns ``"incremental"`` when the factored state was updated in
        place, or ``"refit"`` when a full :meth:`fit` was required (flat
        reference mode, changed domains, or retired slots accumulating past
        the layout guard).
        """
        fitted = self._require_fitted()
        removed = np.unique(np.asarray(removed, dtype=np.int64))
        if removed.size == 0:
            raise KnowledgeError("remove_rows requires at least one removed row")
        if removed[0] < 0 or removed[-1] >= fitted.n_rows:
            raise KnowledgeError("removed row positions fall outside the fitted table")
        if removed.size >= fitted.n_rows:
            raise KnowledgeError("cannot remove every row of the fitted table")
        if table.n_rows != fitted.n_rows - removed.size:
            raise KnowledgeError(
                f"table has {table.n_rows} rows; expected "
                f"{fitted.n_rows - removed.size} (the fitted table minus the removed rows)"
            )
        if self.mode != "factored" or not self._same_domains(table):
            self.fit(table)
            return "refit"
        sensitive = fitted.sensitive_codes().astype(np.int64)
        delta = self._exact_cell_deltas(
            removed_solo=self._solo_of_row[removed],
            removed_slot=self._slot_of_row[removed],
            removed_sensitive=sensitive[removed],
        )
        if self._retired_guard_breached():
            # Too many slots emptied to exactly zero: refit into a compact
            # layout (the emptied-slot refit valve, amortised).
            self.fit(table)
            return "refit"
        keep = np.ones(fitted.n_rows, dtype=bool)
        keep[removed] = False
        self._table = table
        self._overall = table.sensitive_distribution()
        self._solo_of_row = self._solo_of_row[keep]
        self._slot_of_row = self._slot_of_row[keep]
        self._finish_exact_update(*delta)
        return "incremental"

    def update_rows(self, table: MicrodataTable, positions: np.ndarray) -> str:
        """Re-point the fitted state at ``table`` after in-place row corrections.

        ``table`` holds the same rows as the fitted table except at
        ``positions``, whose QI/sensitive values changed *within the fitted
        domains* (callers rebuild from scratch when a correction introduces
        new values - codes would shift).  The old cells' counts are
        subtracted and the new cells' counts added in one exact pass; rest
        combinations first seen in the correction take fresh slots exactly
        as appends do, under the same count-tensor and block-budget guards.

        Returns ``"incremental"`` or ``"refit"`` (flat mode, changed
        domains, retired slots past the layout guard, or a breached growth
        guard).
        """
        fitted = self._require_fitted()
        positions = np.unique(np.asarray(positions, dtype=np.int64))
        if positions.size == 0:
            raise KnowledgeError("update_rows requires at least one updated row")
        if positions[0] < 0 or positions[-1] >= fitted.n_rows:
            raise KnowledgeError("updated row positions fall outside the fitted table")
        if table.n_rows != fitted.n_rows:
            raise KnowledgeError(
                f"update_rows expects the same number of rows; got {table.n_rows} "
                f"after {fitted.n_rows}"
            )
        if self.mode != "factored" or not self._same_domains(table):
            self.fit(table)
            return "refit"
        m = table.sensitive_domain().size
        old_solo = self._solo_of_row[positions]
        old_slot = self._slot_of_row[positions]
        old_sensitive = fitted.sensitive_codes().astype(np.int64)[positions]
        codes_new = table.qi_code_matrix()[positions].astype(np.int64)
        new_sensitive = table.sensitive_codes()[positions].astype(np.int64)
        new_solo = codes_new[:, self._solo_index]
        rest_new = codes_new[:, self._rest_indices]

        new_slot = self._assign_fresh_slots(rest_new, m)
        if new_slot is None:
            self.fit(table)
            return "refit"
        delta = self._exact_cell_deltas(
            removed_solo=old_solo,
            removed_slot=old_slot,
            removed_sensitive=old_sensitive,
            added_solo=new_solo,
            added_slot=new_slot,
            added_sensitive=new_sensitive,
        )
        if self._retired_guard_breached():
            self.fit(table)
            return "refit"
        self._table = table
        self._overall = table.sensitive_distribution()
        self._solo_of_row = self._solo_of_row.copy()
        self._solo_of_row[positions] = new_solo
        self._slot_of_row = self._slot_of_row.copy()
        self._slot_of_row[positions] = new_slot
        self._finish_exact_update(*delta)
        return "incremental"

    def _exact_cell_deltas(
        self,
        *,
        removed_solo: np.ndarray | None = None,
        removed_slot: np.ndarray | None = None,
        removed_sensitive: np.ndarray | None = None,
        added_solo: np.ndarray | None = None,
        added_slot: np.ndarray | None = None,
        added_sensitive: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Apply paired integer count deltas to the count storage.

        Returns ``(rest_touched, cell_solo, cell_rest)`` - the touched rest
        slots and the distinct touched (solo, slot) cells - after folding the
        removed rows' counts out of (and the added rows' counts into) the
        count storage.  Counts are integers in float64, so the subtraction is
        exact and an emptied slot lands on exactly ``0.0`` (a *retired* slot
        whose contributions are exact zeros everywhere).
        """
        m = self._count_storage.shape[2]
        solo_size = self._count_storage.shape[0]
        slot_parts = [s for s in (removed_slot, added_slot) if s is not None]
        rest_touched = np.unique(np.concatenate(slot_parts))

        def scatter(solo: np.ndarray, slot: np.ndarray, sensitive: np.ndarray, sign: float) -> None:
            position = np.searchsorted(rest_touched, slot)
            flat = (solo * rest_touched.size + position) * m + sensitive
            counts = (
                np.bincount(flat, minlength=solo_size * rest_touched.size * m)
                .reshape(solo_size, rest_touched.size, m)
                .astype(np.float64)
            )
            self._count_storage[:, rest_touched, :] += sign * counts
            self._slot_totals[rest_touched] += sign * counts.sum(axis=(0, 2))

        cells = []
        if removed_slot is not None:
            scatter(removed_solo, removed_slot, removed_sensitive, -1.0)
            cells.append(removed_solo * self._n_combos + removed_slot)
        if added_slot is not None:
            scatter(added_solo, added_slot, added_sensitive, 1.0)
            cells.append(added_solo * self._n_combos + added_slot)
        distinct = np.unique(np.concatenate(cells))
        return rest_touched, distinct // self._n_combos, distinct % self._n_combos

    def _retired_guard_breached(self) -> bool:
        """Whether retired (exactly-zero) slots warrant a compact refit."""
        retired = int((self._slot_totals[: self._n_combos] == 0.0).sum())
        return retired > max(_MIN_RETIRED_SLOTS, _MAX_RETIRED_FRACTION * self._n_combos)

    def _finish_exact_update(
        self, rest_touched: np.ndarray, cell_solo: np.ndarray, cell_rest: np.ndarray
    ) -> None:
        """Rebuild the query index and exactly refresh every cached contraction."""
        previous_solo, previous_rest = self._query_solo, self._query_rest
        self._rebuild_query_index()
        previous_pairs = previous_solo * max(1, self._n_combos) + previous_rest
        for cache in self._contractions.values():
            self._refresh_cache_exact(
                cache, rest_touched, cell_solo, cell_rest, previous_pairs
            )

    def _refresh_cache_exact(
        self,
        cache: dict,
        rest_touched: np.ndarray,
        cell_solo: np.ndarray,
        cell_rest: np.ndarray,
        previous_pairs: np.ndarray,
    ) -> None:
        """Fold removals/updates into one bandwidth's cached contraction.

        Unlike the append path (:meth:`_update_cache`), nothing is
        delta-accumulated: the touched contracted columns are recomputed from
        the exactly-updated count tensor and every affected or fresh query is
        fully recontracted, so a numerator whose neighbourhood emptied lands
        on exactly zero (and takes the overall-distribution fallback) instead
        of surviving as a cancellation residue.
        """
        qi_names = list(self._table.quasi_identifier_names)
        n_combos = self._n_combos
        m = self._count_storage.shape[2]
        solo_weights = self._bandwidth_weights(cache["bandwidth"], qi_names[self._solo_index])
        solo_size = solo_weights.shape[0]
        contracted = cache["contracted_storage"][:, :n_combos, :]
        counts_touched = self._count_storage[:, rest_touched, :]
        contracted[:, rest_touched, :] = (
            solo_weights @ counts_touched.reshape(solo_size, -1)
        ).reshape(solo_size, rest_touched.size, m)
        block_joints = cache["block_joints"]

        # Realign numerators with the (shrunk or grown) query set: vanished
        # pairs are dropped, fresh pairs recontract fully below.
        numerators = np.zeros((self._pair_keys.size, m), dtype=np.float64)
        positions = np.searchsorted(self._pair_keys, previous_pairs)
        positions = np.minimum(positions, max(0, self._pair_keys.size - 1))
        survives = self._pair_keys[positions] == previous_pairs
        numerators[positions[survives]] = cache["numerators"][survives]
        fresh = np.ones(self._pair_keys.size, dtype=bool)
        fresh[positions[survives]] = False
        affected = self._affected_query_mask(
            cache["bandwidth"], block_joints, cell_solo, cell_rest
        )
        self._contract_queries(
            numerators, np.flatnonzero(affected | fresh), block_joints, contracted
        )
        cache["numerators"] = numerators

    def _assign_fresh_slots(self, rest_new: np.ndarray, m: int) -> np.ndarray | None:
        """Slots for a batch of rest combinations, growing the layout as needed.

        Combinations first seen in the batch take the next free slots (the
        shared scheme of :meth:`append_rows` and :meth:`update_rows`).
        Returns the per-row slot ids, or ``None`` when growth breaches a
        guard and the caller must refit: the count-tensor memory guard, or a
        multi-attribute block outgrowing the contraction budget (the layout
        must be re-derived; singleton blocks are admissible over budget by
        design).
        """
        n_combos = self._n_combos
        stacked = np.concatenate([self._rest_combos[:n_combos], rest_new], axis=0)
        uniq, inverse = np.unique(stacked, axis=0, return_inverse=True)
        slot_of_uid = np.full(uniq.shape[0], -1, dtype=np.int64)
        slot_of_uid[inverse[:n_combos]] = np.arange(n_combos, dtype=np.int64)
        fresh_uids = np.flatnonzero(slot_of_uid < 0)
        if fresh_uids.size:
            solo_size = self._count_storage.shape[0]
            if solo_size * (n_combos + fresh_uids.size) * m > self.config.max_count_cells:
                return None
            slot_of_uid[fresh_uids] = n_combos + np.arange(fresh_uids.size, dtype=np.int64)
            self._grow_combos(uniq[fresh_uids])
            if any(
                len(block.positions) > 1
                and block.n_combos**2 > max(1, self.config.max_cells)
                for block in self._blocks
            ):
                return None
        return slot_of_uid[inverse[n_combos:]]

    def _grow_combos(self, new_combos: np.ndarray) -> None:
        """Assign slots to new rest combinations, reallocating storage if full."""
        n_old = self._n_combos
        n_after = n_old + new_combos.shape[0]
        capacity = self._rest_combos.shape[0]
        if n_after > capacity:
            capacity = self._capacity(n_after)
            combos = np.zeros((capacity, self._rest_combos.shape[1]), self._rest_combos.dtype)
            combos[:n_old] = self._rest_combos[:n_old]
            self._rest_combos = combos
            storage = np.zeros(
                (self._count_storage.shape[0], capacity, self._count_storage.shape[2])
            )
            storage[:, :n_old, :] = self._count_storage[:, :n_old, :]
            self._count_storage = storage
            totals = np.zeros(capacity, dtype=np.float64)
            totals[:n_old] = self._slot_totals[:n_old]
            self._slot_totals = totals
            for block in self._blocks:
                code_of_slot = np.zeros(capacity, dtype=np.int64)
                code_of_slot[:n_old] = block.code_of_slot[:n_old]
                block.code_of_slot = code_of_slot
            for cache in self._contractions.values():
                contracted = np.zeros_like(storage)
                contracted[:, :n_old, :] = cache["contracted_storage"][:, :n_old, :]
                cache["contracted_storage"] = contracted
        slots = np.arange(n_old, n_after, dtype=np.int64)
        self._rest_combos[slots] = new_combos
        self._n_combos = n_after
        grown = [
            self._grow_block(block, new_combos[:, list(block.positions)], slots)
            for block in self._blocks
        ]
        for cache in self._contractions.values():
            cache["block_joints"] = [
                self._grow_block_joint(block, joint, n_new, cache["bandwidth"])
                for block, joint, n_new in zip(self._blocks, cache["block_joints"], grown)
            ]
            cache["contracted_storage"][:, slots, :] = 0.0

    def _grow_block(self, block: _RestBlock, sub_combos: np.ndarray, slots: np.ndarray) -> int:
        """Grow one block with a batch of new rest combinations; return new combo count."""
        c_old = block.n_combos
        stacked = np.concatenate([block.combos, sub_combos], axis=0)
        uniq, inverse = np.unique(stacked, axis=0, return_inverse=True)
        id_of_uid = np.full(uniq.shape[0], -1, dtype=np.int64)
        id_of_uid[inverse[:c_old]] = np.arange(c_old, dtype=np.int64)
        fresh = np.flatnonzero(id_of_uid < 0)
        id_of_uid[fresh] = c_old + np.arange(fresh.size, dtype=np.int64)
        block.code_of_slot[slots] = id_of_uid[inverse[c_old:]]
        if fresh.size:
            block.combos = np.concatenate([block.combos, uniq[fresh]], axis=0)
            block.n_combos = c_old + fresh.size
        return int(fresh.size)

    def _grow_block_joint(
        self, block: _RestBlock, joint: np.ndarray, n_new: int, bandwidth: Bandwidth
    ) -> np.ndarray:
        """Extend a cached block joint with rows/columns for new block combos.

        The matrix stays symmetric because every attribute distance matrix is.
        """
        if n_new == 0:
            return joint
        c_after = block.n_combos
        c_old = c_after - n_new
        grown = np.empty((c_after, c_after), dtype=np.float64)
        grown[:c_old, :c_old] = joint
        rows = np.ones((n_new, c_after), dtype=np.float64)
        for offset, name in enumerate(block.names):
            weights = self._bandwidth_weights(bandwidth, name)
            column = block.combos[:c_after, offset]
            rows *= weights[column[c_old:]][:, column]
        grown[c_old:, :] = rows
        grown[:c_old, c_old:] = rows[:, :c_old].T
        return grown

    # -- per-bandwidth contraction ----------------------------------------------------
    def _block_distances(self, index: int, block: _RestBlock) -> dict[str, np.ndarray] | None:
        """Gathered per-attribute distance sub-matrices of one block (lazy).

        Bandwidth-independent, so one gather pass serves every bandwidth of a
        skyline grid (:attr:`EstimatorConfig.share_bandwidths`).  Entries are
        tagged with the block's combo count: growth invalidates them, a refit
        clears the whole cache.  Returns ``None`` - compute dense - for a
        singleton block whose over-budget ``c^2`` would blow the cell budget
        (every multi-attribute block satisfies ``c^2 <= max_cells`` by
        construction).
        """
        cached = self._block_distance_cache.get(index)
        if cached is not None and cached[0] == block.n_combos:
            return cached[1]
        c = block.n_combos
        if c * c > max(1, self.config.max_cells):
            return None
        gathered: dict[str, np.ndarray] = {}
        for offset, name in enumerate(block.names):
            column = block.combos[:c, offset]
            distances = self._distance_matrices[name]
            gathered[name] = np.take(np.take(distances, column, axis=0), column, axis=1)
        self._block_distance_cache[index] = (c, gathered)
        return gathered

    def _block_joint(
        self,
        block: _RestBlock,
        bandwidth: Bandwidth,
        distances: dict[str, np.ndarray] | None = None,
    ) -> np.ndarray:
        """The kernel-product joint weight matrix of one block's combinations.

        With ``distances`` (the shared gathered sub-matrices) the kernel is
        applied elementwise to the gathered values instead of gathering from
        the full-domain weight matrix - value-identical per element, hence
        bitwise identical.  Compact-support kernels whose closed support mask
        ``d <= B`` is sparse evaluate only inside the mask; everything
        outside is an exact ``0.0`` for them by definition.
        """
        c = block.n_combos
        if distances is not None:
            if self._compact_support:
                mask: np.ndarray | None = None
                for name in block.names:
                    within = distances[name] <= bandwidth[name]
                    mask = within if mask is None else mask & within
                if mask.sum() * 4 <= mask.size:
                    rows, cols = np.nonzero(mask)
                    values: np.ndarray | None = None
                    for name in block.names:
                        weights = self._kernel(
                            distances[name][rows, cols], bandwidth[name]
                        )
                        values = weights if values is None else values * weights
                    joint = np.zeros((c, c), dtype=np.float64)
                    joint[rows, cols] = values
                    return joint
            joint: np.ndarray | None = None
            for name in block.names:
                weights = self._kernel(distances[name], bandwidth[name])
                joint = weights if joint is None else joint * weights
            return joint
        joint = None
        for offset, name in enumerate(block.names):
            weights = self._bandwidth_weights(bandwidth, name)
            column = block.combos[:c, offset]
            gathered = np.take(np.take(weights, column, axis=0), column, axis=1)
            joint = gathered if joint is None else joint * gathered
        if joint is None:  # pragma: no cover - blocks always hold >= 1 attribute
            joint = np.ones((c, c), dtype=np.float64)
        return joint

    def _joint_rows(
        self,
        query_slots: np.ndarray,
        block_joints: list[np.ndarray],
        columns: np.ndarray | None = None,
    ) -> np.ndarray:
        """Joint weight rows ``J[query_slots, columns]``, chained over the blocks.

        ``columns`` defaults to every active slot.  This is the only place the
        full joint is ever materialised - callers tile ``query_slots`` so the
        result stays within the cell budget.
        """
        rows: np.ndarray | None = None
        for block, joint in zip(self._blocks, block_joints):
            q = block.code_of_slot[query_slots]
            d = (
                block.code_of_slot[: self._n_combos]
                if columns is None
                else block.code_of_slot[columns]
            )
            # Gather the smaller axis first so the intermediate stays at
            # min(|q|, |d|) x c_b cells - delta updates pass few columns but
            # many query slots, the full contraction the other way around.
            if len(q) <= len(d):
                gathered = np.take(np.take(joint, q, axis=0), d, axis=1)
            else:
                gathered = np.take(np.take(joint, d, axis=1), q, axis=0)
            rows = gathered if rows is None else rows * gathered
        if rows is None:
            n_columns = self._n_combos if columns is None else len(columns)
            rows = np.ones((len(query_slots), n_columns), dtype=np.float64)
        return rows

    def _contract_queries(
        self,
        numerators: np.ndarray,
        selection: np.ndarray,
        block_joints: list[np.ndarray],
        contracted: np.ndarray,
        columns: np.ndarray | None = None,
        accumulate: bool = False,
    ) -> None:
        """Numerators for the selected query positions (grouped by solo code, tiled).

        ``columns`` restricts the contraction to a subset of rest slots (with
        ``contracted`` holding just those columns) and ``accumulate`` adds to
        the existing numerators instead of overwriting - together they serve
        the incremental delta updates of :meth:`_update_cache`.

        Tiles are dispatched over the shared worker pool when ``jobs > 1``:
        every tile writes a disjoint ``numerators`` slice with exactly the
        serial tile's arithmetic, so the threaded result is bitwise identical
        to the serial loop regardless of scheduling.  Returns the number of
        distinct worker threads that touched the contraction (1 serial).
        """
        if selection.size == 0:
            return 1
        tile = self._tile_rows(self._n_combos if columns is None else len(columns))
        selected_solo = self._query_solo[selection]
        boundaries = np.flatnonzero(np.diff(selected_solo)) + 1
        tiles: list[tuple[int, np.ndarray]] = []
        for run in np.split(selection, boundaries):
            a = int(self._query_solo[run[0]])
            for start in range(0, run.size, tile):
                tiles.append((a, run[start : start + tile]))

        def contract(a: int, chunk: np.ndarray) -> None:
            rows = self._joint_rows(self._query_rest[chunk], block_joints, columns)
            if accumulate:
                numerators[chunk] += rows @ contracted[a]
            else:
                numerators[chunk] = rows @ contracted[a]

        if self._jobs <= 1 or len(tiles) <= 1:
            for a, chunk in tiles:
                contract(a, chunk)
            return 1
        return self._dispatch_tiles(contract, tiles)

    def _dispatch_tiles(
        self,
        contract: Callable[[int, np.ndarray], None],
        tiles: list[tuple[int, np.ndarray]],
    ) -> int:
        """Run independent contraction tiles on the shared pool.

        The tracer and its innermost open span are captured on *this*
        (dispatching) thread; every worker attaches them so its
        ``backend.tile`` spans nest under the owning contraction span
        instead of interleaving across concurrent audits.  Returns the
        number of distinct pool threads used.
        """
        tracer = current_tracer()
        parent = tracer.current()
        used: set[int] = set()

        def task(a: int, chunk: np.ndarray) -> None:
            used.add(threading.get_ident())
            with tracer.attach(parent):
                with tracer.span("backend.tile", solo=a, queries=int(chunk.size)):
                    contract(a, chunk)

        run_tasks(
            [lambda a=a, chunk=chunk: task(a, chunk) for a, chunk in tiles],
            self._jobs,
        )
        return len(used)

    def _update_cache(
        self,
        cache: dict,
        delta_counts: np.ndarray,
        rest_touched: np.ndarray,
        cell_solo: np.ndarray,
        cell_rest: np.ndarray,
        previous_pairs: np.ndarray,
    ) -> None:
        """Fold an append batch into one bandwidth's cached contraction.

        ``delta_counts`` holds the batch's counts over the touched rest slots
        (``(solo, len(rest_touched), m)``).  Only queries with a positive
        kernel weight towards some appended row can change: the kernels are
        non-negative with compact support, so a query whose solo weight or
        chained rest weight is zero for every touched cell keeps a
        bitwise-identical numerator.
        """
        qi_names = list(self._table.quasi_identifier_names)
        solo_weights = self._bandwidth_weights(cache["bandwidth"], qi_names[self._solo_index])
        contracted = cache["contracted_storage"][:, : self._n_combos, :]
        block_joints = cache["block_joints"]
        m = contracted.shape[2]
        contracted_delta = (
            solo_weights @ delta_counts.reshape(delta_counts.shape[0], -1)
        ).reshape(solo_weights.shape[0], rest_touched.size, m)
        contracted[:, rest_touched, :] += contracted_delta

        # Realign the cached numerators with the (possibly grown) query set.
        numerators = np.zeros((self._pair_keys.size, m), dtype=np.float64)
        kept = np.searchsorted(self._pair_keys, previous_pairs)
        numerators[kept] = cache["numerators"]
        fresh = np.ones(self._pair_keys.size, dtype=bool)
        fresh[kept] = False

        affected = self._affected_query_mask(
            cache["bandwidth"], block_joints, cell_solo, cell_rest
        )
        # Existing affected queries take the *delta* contraction (touched
        # columns only); brand-new queries need the full contraction.  Both
        # sides are sums of non-negative kernel terms, so an exactly-zero
        # numerator can neither appear nor vanish spuriously.
        self._contract_queries(
            numerators,
            np.flatnonzero(affected & ~fresh),
            block_joints,
            contracted_delta,
            columns=rest_touched,
            accumulate=True,
        )
        self._contract_queries(numerators, np.flatnonzero(fresh), block_joints, contracted)
        cache["numerators"] = numerators

    def _affected_query_mask(
        self,
        bandwidth: Bandwidth,
        block_joints: list[np.ndarray],
        cell_solo: np.ndarray,
        cell_rest: np.ndarray,
    ) -> np.ndarray:
        """Boolean mask over the query positions whose numerator may change.

        A query (a, r) is affected iff some touched cell (a0, r0) has
        positive solo weight a->a0 *and* positive chained rest weight
        r->r0; count the witnessing cells with small matmuls (tiled over
        rest slots so the transient weight rows respect the cell budget)
        instead of materialising the (queries x cells) mask.
        """
        qi_names = list(self._table.quasi_identifier_names)
        n_combos = self._n_combos
        solo_weights = self._bandwidth_weights(bandwidth, qi_names[self._solo_index])
        solo_positive = (solo_weights[:, cell_solo] > 0.0).astype(np.float32)
        witnesses = np.empty((solo_weights.shape[0], n_combos), dtype=np.float32)
        tile = self._tile_rows(max(1, cell_rest.size))

        def witness(start: int) -> None:
            stop = min(start + tile, n_combos)
            slots = np.arange(start, stop, dtype=np.int64)
            cell_weights = self._joint_rows(slots, block_joints, columns=cell_rest)
            witnesses[:, start:stop] = solo_positive @ (
                cell_weights > 0.0
            ).astype(np.float32).T

        starts = range(0, n_combos, tile)
        # Disjoint column slices per task; same arithmetic either way.
        run_tasks([lambda start=start: witness(start) for start in starts], self._jobs)
        return witnesses[self._query_solo, self._query_rest] > 0.0

    def _build_block_joints(self, bandwidth: Bandwidth, tracer) -> list[np.ndarray]:
        """All block joints for one bandwidth, threaded when ``jobs > 1``.

        Each block's joint is an independent build, so with multiple blocks
        they dispatch over the shared pool; the per-block spans attach to the
        dispatching thread's open ``backend.contract`` span.  The serial path
        is the pre-pool loop, span for span.
        """
        share = self.config.share_bandwidths
        distances = [
            self._block_distances(index, block) if share else None
            for index, block in enumerate(self._blocks)
        ]
        if self._jobs <= 1 or len(self._blocks) <= 1:
            block_joints = []
            for index, block in enumerate(self._blocks):
                with tracer.span(
                    "backend.block_joint",
                    names=list(block.names),
                    combos=block.n_combos,
                ):
                    block_joints.append(
                        self._block_joint(block, bandwidth, distances[index])
                    )
            return block_joints
        parent = tracer.current()

        def build(index: int, block: _RestBlock) -> np.ndarray:
            with tracer.attach(parent):
                with tracer.span(
                    "backend.block_joint",
                    names=list(block.names),
                    combos=block.n_combos,
                ):
                    return self._block_joint(block, bandwidth, distances[index])

        return run_tasks(
            [
                lambda index=index, block=block: build(index, block)
                for index, block in enumerate(self._blocks)
            ],
            self._jobs,
        )

    def _factored_matrix(self, bandwidth: Bandwidth) -> np.ndarray:
        """The per-row prior matrix of the fitted table under one bandwidth."""
        table = self._table
        qi_names = list(table.quasi_identifier_names)
        m = table.sensitive_domain().size
        cache = self._contractions.get(bandwidth.items()) if self.incremental else None
        if cache is not None:
            numerators = cache["numerators"]
        else:
            tracer = current_tracer()
            with tracer.span(
                "backend.contract", bandwidth=dict(bandwidth.items())
            ) as contract_span:
                solo_name = qi_names[self._solo_index]
                solo_weights = self._bandwidth_weights(bandwidth, solo_name)
                block_joints = self._build_block_joints(bandwidth, tracer)

                n_combos = self._n_combos
                solo_size = solo_weights.shape[0]
                # Padding slots (growth headroom) only exist in incremental mode,
                # where they must be zero; one-shot estimations get exact-size,
                # uninitialised buffers.  The solo contraction stays a single
                # GEMM (never split across workers): BLAS blocking could vary
                # with the operand shape, and the one matmul already uses
                # whatever threads BLAS itself brings.
                allocate = np.zeros if self.incremental else np.empty
                contracted_storage = allocate(self._count_storage.shape, dtype=np.float64)
                contracted = contracted_storage[:, :n_combos, :]
                contracted[:] = (
                    solo_weights @ self._count_tensor.reshape(solo_size, -1)
                ).reshape(solo_size, n_combos, m)

                numerators = np.empty((self._pair_keys.size, m), dtype=np.float64)
                threads = self._contract_queries(
                    numerators,
                    np.arange(self._pair_keys.size, dtype=np.int64),
                    block_joints,
                    contracted,
                )
                contract_span.annotate(
                    queries=int(self._pair_keys.size), threads=int(threads)
                )
            if self.incremental:
                self._contractions[bandwidth.items()] = {
                    "bandwidth": bandwidth,
                    "block_joints": block_joints,
                    "contracted_storage": contracted_storage,
                    "numerators": numerators,
                }
        return self._normalise(numerators)[self._query_inverse]

    def _normalise(self, numerators: np.ndarray) -> np.ndarray:
        """Row-normalise numerators; degenerate rows fall back to the overall."""
        denominators = numerators.sum(axis=1)
        degenerate = denominators <= 0.0
        result = numerators / np.where(degenerate, 1.0, denominators)[:, None]
        if degenerate.any():
            result[degenerate] = self._overall
        return result

    # -- flat reference ---------------------------------------------------------------
    def _flat_matrix_for_codes(
        self, query_codes: np.ndarray, bandwidth: Bandwidth
    ) -> np.ndarray:
        """The reference O(n^2 d) Nadaraya-Watson sweep over raw query codes."""
        table = self._table
        qi_names = list(table.quasi_identifier_names)
        weight_matrices = [self._bandwidth_weights(bandwidth, name) for name in qi_names]
        m = table.sensitive_domain().size
        data_codes = self._qi_codes
        n_queries = query_codes.shape[0]
        batch_size = self.config.batch_size
        result = np.empty((n_queries, m), dtype=np.float64)
        for start in range(0, n_queries, batch_size):
            stop = min(start + batch_size, n_queries)
            batch = query_codes[start:stop]
            weights = np.ones((stop - start, data_codes.shape[0]), dtype=np.float64)
            for attribute_index, weight_matrix in enumerate(weight_matrices):
                weights *= weight_matrix[batch[:, attribute_index]][:, data_codes[:, attribute_index]]
            numerators = weights @ self._one_hot
            denominators = weights.sum(axis=1)
            degenerate = denominators <= 0.0
            safe = np.where(degenerate, 1.0, denominators)
            chunk = numerators / safe[:, None]
            if degenerate.any():
                chunk[degenerate] = self._overall
            result[start:stop] = chunk
        return result

    # -- estimation -------------------------------------------------------------------
    def matrices(self, bandwidths: Sequence[float | Bandwidth]) -> list[np.ndarray]:
        """Per-row prior matrices of the fitted table, one per bandwidth.

        Identical bandwidths (common in skyline grids) are computed once and
        share the returned array object.
        """
        self._require_fitted()
        resolved = [self.resolve_bandwidth(b) for b in bandwidths]
        computed: dict[tuple[tuple[str, float], ...], np.ndarray] = {}
        results: list[np.ndarray] = []
        for bandwidth in resolved:
            key = bandwidth.items()
            matrix = computed.get(key)
            if matrix is None:
                if self.mode == "factored":
                    matrix = self._factored_matrix(bandwidth)
                else:
                    matrix = self._flat_matrix_for_codes(self._flat_unique, bandwidth)[
                        self._flat_inverse
                    ]
                computed[key] = matrix
            results.append(matrix)
        return results

    def matrix_for_codes(
        self, query_codes: np.ndarray, b: float | Bandwidth
    ) -> np.ndarray:
        """Prior distributions for query rows given as QI *code* combinations.

        ``query_codes`` is a ``(q, d)`` integer matrix in the fitted table's
        code space; the queries need not occur in the table (the factored
        path computes rectangular query-vs-data block weights on the fly).
        """
        table = self._require_fitted()
        bandwidth = self.resolve_bandwidth(b)
        query_codes = np.atleast_2d(np.asarray(query_codes, dtype=np.int64))
        n_attributes = query_codes.shape[1]
        if n_attributes != len(table.quasi_identifier_names):
            raise KnowledgeError(
                f"query has {n_attributes} attributes but the estimator was fitted on "
                f"{len(table.quasi_identifier_names)}"
            )
        unique_codes, inverse = np.unique(query_codes, axis=0, return_inverse=True)
        if self.mode == "flat":
            return self._flat_matrix_for_codes(unique_codes, bandwidth)[inverse]

        qi_names = list(table.quasi_identifier_names)
        m = table.sensitive_domain().size
        n_combos = self._n_combos
        solo_weights = self._bandwidth_weights(bandwidth, qi_names[self._solo_index])
        solo_size = solo_weights.shape[0]
        contracted = (
            solo_weights @ self._count_tensor.reshape(solo_size, -1)
        ).reshape(solo_size, n_combos, m)
        attribute_weights = {
            name: self._bandwidth_weights(bandwidth, name)
            for block in self._blocks
            for name in block.names
        }

        def joint_rows_for(chunk: np.ndarray) -> np.ndarray:
            # Rectangular query-vs-data block weights, one tile at a time
            # (query combos may be unseen, so this cannot gather from the
            # square block joints); the (tile x n_combos) expansion respects
            # the same cell budget as the table-query path.
            rows: np.ndarray | None = None
            for block in self._blocks:
                weights = np.ones((chunk.size, block.n_combos), dtype=np.float64)
                for position, (rest_column, name) in enumerate(
                    zip(block.positions, block.names)
                ):
                    attribute = self._rest_indices[rest_column]
                    column = block.combos[: block.n_combos, position]
                    weights *= np.take(
                        np.take(attribute_weights[name], unique_codes[chunk, attribute], axis=0),
                        column,
                        axis=1,
                    )
                gathered = np.take(weights, block.code_of_slot[:n_combos], axis=1)
                rows = gathered if rows is None else rows * gathered
            if rows is None:
                rows = np.ones((chunk.size, n_combos), dtype=np.float64)
            return rows

        numerators = np.empty((unique_codes.shape[0], m), dtype=np.float64)
        query_solo = unique_codes[:, self._solo_index]
        order = np.argsort(query_solo, kind="stable")
        boundaries = np.flatnonzero(np.diff(query_solo[order])) + 1
        tile = self._tile_rows(n_combos)
        tiles: list[tuple[int, np.ndarray]] = []
        for run in np.split(order, boundaries):
            a = int(query_solo[run[0]])
            for start in range(0, run.size, tile):
                tiles.append((a, run[start : start + tile]))

        def contract(a: int, chunk: np.ndarray) -> None:
            numerators[chunk] = joint_rows_for(chunk) @ contracted[a]

        if self._jobs <= 1 or len(tiles) <= 1:
            for a, chunk in tiles:
                contract(a, chunk)
        else:
            self._dispatch_tiles(contract, tiles)
        return self._normalise(numerators)[inverse]
