"""Experiment harness: Table V configurations and per-figure experiment runners."""

from repro.experiments.ablation import (
    ablation_distance_measure,
    ablation_inference_method,
    ablation_kernel_choice,
    ablation_mondrian_split,
)
from repro.experiments.config import (
    MODEL_NAMES,
    PARA1,
    PARA2,
    PARA3,
    PARA4,
    TABLE_V,
    PrivacyParameters,
    build_models,
    parameters_by_name,
)
from repro.experiments.figures import (
    figure_1a,
    figure_1b,
    figure_2,
    figure_3a,
    figure_3b,
    figure_4a,
    figure_4b,
    figure_5a,
    figure_5b,
    figure_6a,
    figure_6b,
    four_model_releases,
)
from repro.experiments.results import ExperimentResult, ExperimentSeries

__all__ = [
    "MODEL_NAMES",
    "PARA1",
    "PARA2",
    "PARA3",
    "PARA4",
    "TABLE_V",
    "ExperimentResult",
    "ExperimentSeries",
    "PrivacyParameters",
    "ablation_distance_measure",
    "ablation_inference_method",
    "ablation_kernel_choice",
    "ablation_mondrian_split",
    "build_models",
    "figure_1a",
    "figure_1b",
    "figure_2",
    "figure_3a",
    "figure_3b",
    "figure_4a",
    "figure_4b",
    "figure_5a",
    "figure_5b",
    "figure_6a",
    "figure_6b",
    "four_model_releases",
    "parameters_by_name",
]
