"""Experiment runners: one function per table/figure of the paper's evaluation.

Every function takes a :class:`~repro.data.table.MicrodataTable` (typically a
synthetic Adult-like table from :func:`repro.data.adult.generate_adult`) and
returns an :class:`~repro.experiments.results.ExperimentResult` whose series
mirror the curves of the corresponding figure:

=========================  =====================================================
function                   paper artefact
=========================  =====================================================
:func:`figure_1a`          Fig. 1(a)  vulnerable tuples vs adversary bandwidth b'
:func:`figure_1b`          Fig. 1(b)  vulnerable tuples vs privacy parameters
:func:`figure_2`           Fig. 2     accuracy of the Omega-estimate
:func:`figure_3a`          Fig. 3(a)  continuity of worst-case disclosure risk in b
:func:`figure_3b`          Fig. 3(b)  continuity over the (b1, b2) grid
:func:`figure_4a`          Fig. 4(a)  anonymization time of the four models
:func:`figure_4b`          Fig. 4(b)  kernel-estimation time vs b and input size
:func:`figure_5a`          Fig. 5(a)  Discernibility Metric
:func:`figure_5b`          Fig. 5(b)  Global Certainty Penalty
:func:`figure_6a`          Fig. 6(a)  query error vs query dimension qd
:func:`figure_6b`          Fig. 6(b)  query error vs selectivity sel
=========================  =====================================================

Absolute numbers differ from the paper (different hardware, Python instead of
Java, a synthetic Adult-like dataset), but the qualitative shapes - who wins,
monotonicity, continuity - are what these runners are meant to reproduce.
"""

from __future__ import annotations

import time

import numpy as np

from repro.anonymize.anonymizer import AnonymizationResult
from repro.api.session import Session
from repro.api.sweep import SweepSpec
from repro.data.adult import generate_adult
from repro.data.table import MicrodataTable
from repro.exceptions import ExperimentError
from repro.experiments.config import MODEL_NAMES, TABLE_V, PrivacyParameters, build_models
from repro.experiments.results import ExperimentResult
from repro.inference.exact import exact_posterior, group_sensitive_counts
from repro.inference.omega import omega_posterior
from repro.knowledge.bandwidth import Bandwidth
from repro.knowledge.prior import kernel_prior
from repro.privacy.disclosure import worst_case_disclosure_risk
from repro.privacy.models import BTPrivacy
from repro.utility.metrics import discernibility_metric, global_certainty_penalty
from repro.utility.query import QueryWorkloadGenerator, average_relative_error

DEFAULT_B_PRIME_VALUES = (0.2, 0.3, 0.4, 0.5)


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------
#
# Every runner accepts an optional Session; passing one shared session (as the
# CLI ``figure`` command does) reuses the kernel prior estimations - the
# dominant cost of the (B,t) experiments - across parameter sets, adversaries
# and figures.


def four_model_releases(
    table: MicrodataTable,
    parameters: PrivacyParameters,
    *,
    with_k_anonymity: bool = True,
    session: Session | None = None,
) -> dict[str, AnonymizationResult]:
    """Anonymize ``table`` with the four Section V models under one parameter set."""
    session = session or Session(table)
    models = build_models(parameters, with_k_anonymity=with_k_anonymity)
    specs = [
        SweepSpec(label=name, model=models[name], utility=False) for name in MODEL_NAMES
    ]
    outcome = session.sweep(specs)
    return {row.label: row.bundle.result for row in outcome.rows}


def _attack_counts(
    session: Session,
    releases: dict[str, AnonymizationResult],
    b_prime: float,
    threshold: float,
) -> dict[str, int]:
    """Vulnerable-tuple counts of one adversary against a set of releases."""
    counts: dict[str, int] = {}
    for name, result in releases.items():
        outcome = session.attack(
            result.release.groups, b_prime=b_prime, threshold=threshold
        )
        counts[name] = outcome.vulnerable_tuples
    return counts


# ---------------------------------------------------------------------------
# Figure 1: effects of probabilistic background knowledge
# ---------------------------------------------------------------------------


def figure_1a(
    table: MicrodataTable,
    parameters: PrivacyParameters,
    *,
    b_prime_values: tuple[float, ...] = DEFAULT_B_PRIME_VALUES,
    session: Session | None = None,
) -> ExperimentResult:
    """Figure 1(a): vulnerable tuples vs the adversary's bandwidth ``b'``."""
    session = session or Session(table)
    releases = four_model_releases(table, parameters, session=session)
    result = ExperimentResult(
        experiment_id="Figure 1(a)",
        title=f"Probabilistic background-knowledge attack, {parameters.describe()}",
        x_label="b' value",
        y_label="number of vulnerable tuples",
    )
    counts_per_model: dict[str, list[float]] = {name: [] for name in MODEL_NAMES}
    for b_prime in b_prime_values:
        counts = _attack_counts(session, releases, b_prime, parameters.t)
        for name in MODEL_NAMES:
            counts_per_model[name].append(float(counts[name]))
    for name in MODEL_NAMES:
        result.add_series(name, list(b_prime_values), counts_per_model[name])
    return result


def figure_1b(
    table: MicrodataTable,
    *,
    parameter_sets: tuple[PrivacyParameters, ...] = TABLE_V,
    b_prime: float = 0.3,
    session: Session | None = None,
) -> ExperimentResult:
    """Figure 1(b): vulnerable tuples vs the privacy parameter set (fixed ``b' = 0.3``)."""
    result = ExperimentResult(
        experiment_id="Figure 1(b)",
        title=f"Probabilistic background-knowledge attack, adversary b'={b_prime:g}",
        x_label="privacy parameter",
        y_label="number of vulnerable tuples",
    )
    session = session or Session(table)
    counts_per_model: dict[str, list[float]] = {name: [] for name in MODEL_NAMES}
    for parameters in parameter_sets:
        releases = four_model_releases(table, parameters, session=session)
        counts = _attack_counts(session, releases, b_prime, parameters.t)
        for name in MODEL_NAMES:
            counts_per_model[name].append(float(counts[name]))
    labels = [parameters.name for parameters in parameter_sets]
    for name in MODEL_NAMES:
        result.add_series(name, labels, counts_per_model[name])
    return result


# ---------------------------------------------------------------------------
# Figure 2: accuracy of the Omega-estimate
# ---------------------------------------------------------------------------


def figure_2(
    table: MicrodataTable,
    *,
    group_sizes: tuple[int, ...] = (3, 5, 8, 10, 15),
    b_values: tuple[float, ...] = DEFAULT_B_PRIME_VALUES,
    repeats: int = 100,
    seed: int = 42,
    session: Session | None = None,
) -> ExperimentResult:
    """Figure 2: average distance error of the Omega-estimate vs group size ``N``.

    For each ``N`` the experiment samples ``repeats`` random groups, runs both
    exact inference and the Omega-estimate, and reports
    ``rho = mean_j |D[Pexa, Ppri] - D[Pome, Ppri]|`` averaged over the runs.
    """
    if repeats <= 0:
        raise ExperimentError("repeats must be positive")
    rng = np.random.default_rng(seed)
    session = session or Session(table)
    measure = session.measure("smoothed-js")
    sensitive_codes = session.sensitive_codes()
    m = table.sensitive_domain().size
    result = ExperimentResult(
        experiment_id="Figure 2",
        title="Accuracy of the Omega-estimate",
        x_label="N value",
        y_label="aggregate distance error",
    )
    for b in b_values:
        priors = session.priors(b)
        errors_per_size: list[float] = []
        for group_size in group_sizes:
            errors = []
            for _ in range(repeats):
                indices = rng.choice(table.n_rows, size=group_size, replace=False)
                prior = priors.matrix[indices]
                counts = group_sensitive_counts(sensitive_codes[indices], m)
                exact = exact_posterior(prior, counts)
                omega = omega_posterior(prior, counts)
                exact_distances = measure.rowwise(prior, exact)
                omega_distances = measure.rowwise(prior, omega)
                errors.append(float(np.abs(exact_distances - omega_distances).mean()))
            errors_per_size.append(float(np.mean(errors)))
        result.add_series(f"b={b:g}", list(group_sizes), errors_per_size)
    return result


# ---------------------------------------------------------------------------
# Figure 3: continuity of the worst-case disclosure risk
# ---------------------------------------------------------------------------


def figure_3a(
    table: MicrodataTable,
    *,
    table_b_values: tuple[float, ...] = (0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5),
    adversary_b_values: tuple[float, ...] = DEFAULT_B_PRIME_VALUES,
    t: float = 0.25,
    k: int = 3,
    session: Session | None = None,
) -> ExperimentResult:
    """Figure 3(a): worst-case disclosure risk vs the publisher's bandwidth ``b``."""
    session = session or Session(table)
    measure = session.measure("smoothed-js")
    sensitive_codes = session.sensitive_codes()
    releases = {}
    for b in table_b_values:
        releases[b] = session.anonymize(BTPrivacy(b, t), k=k).release
    result = ExperimentResult(
        experiment_id="Figure 3(a)",
        title=f"Continuity of worst-case disclosure risk (t={t:g}, k={k})",
        x_label="b value",
        y_label="worst-case disclosure risk",
    )
    for b_prime in adversary_b_values:
        priors = session.priors(b_prime)
        risks = [
            worst_case_disclosure_risk(priors, sensitive_codes, releases[b].groups, measure)
            for b in table_b_values
        ]
        result.add_series(f"b'={b_prime:g}", list(table_b_values), risks)
    return result


def figure_3b(
    table: MicrodataTable,
    *,
    b1_values: tuple[float, ...] = DEFAULT_B_PRIME_VALUES,
    b2_values: tuple[float, ...] = DEFAULT_B_PRIME_VALUES,
    adversary_b: float = 0.3,
    t: float = 0.25,
    k: int = 3,
    first_block_size: int = 3,
    session: Session | None = None,
) -> ExperimentResult:
    """Figure 3(b): worst-case disclosure risk over the ``(b1, b2)`` grid.

    The publisher's bandwidth assigns ``b1`` to the first ``first_block_size``
    QI attributes and ``b2`` to the rest; the adversary uses a uniform
    ``b' = adversary_b``.
    """
    qi_names = list(table.quasi_identifier_names)
    if not 1 <= first_block_size < len(qi_names):
        raise ExperimentError("first_block_size must leave both attribute blocks non-empty")
    first_block = qi_names[:first_block_size]
    second_block = qi_names[first_block_size:]
    session = session or Session(table)
    measure = session.measure("smoothed-js")
    sensitive_codes = session.sensitive_codes()
    priors = session.priors(adversary_b)
    result = ExperimentResult(
        experiment_id="Figure 3(b)",
        title=f"Continuity over (b1, b2), adversary b'={adversary_b:g}",
        x_label="b2 value",
        y_label="worst-case disclosure risk",
    )
    for b1 in b1_values:
        risks = []
        for b2 in b2_values:
            bandwidth = Bandwidth.split(first_block, b1, second_block, b2)
            release = session.anonymize(BTPrivacy(bandwidth, t), k=k).release
            risks.append(
                worst_case_disclosure_risk(priors, sensitive_codes, release.groups, measure)
            )
        result.add_series(f"b1={b1:g}", list(b2_values), risks)
    return result


# ---------------------------------------------------------------------------
# Figure 4: efficiency
# ---------------------------------------------------------------------------


def figure_4a(
    table: MicrodataTable,
    *,
    parameter_sets: tuple[PrivacyParameters, ...] = TABLE_V,
    session: Session | None = None,
) -> ExperimentResult:
    """Figure 4(a): Mondrian anonymization time (seconds) for the four models.

    As in the paper, the time to estimate background knowledge is *not*
    included for the (B,t) model; it is reported separately by
    :func:`figure_4b`.
    """
    session = session or Session(table)
    result = ExperimentResult(
        experiment_id="Figure 4(a)",
        title="Anonymization time of the four privacy models",
        x_label="privacy parameter",
        y_label="efficiency (sec)",
    )
    times_per_model: dict[str, list[float]] = {name: [] for name in MODEL_NAMES}
    for parameters in parameter_sets:
        releases = four_model_releases(table, parameters, session=session)
        for name in MODEL_NAMES:
            times_per_model[name].append(releases[name].partition_seconds)
    labels = [parameters.name for parameters in parameter_sets]
    for name in MODEL_NAMES:
        result.add_series(name, labels, times_per_model[name])
    return result


def figure_4b(
    *,
    input_sizes: tuple[int, ...] = (10_000, 15_000, 20_000, 25_000),
    b_values: tuple[float, ...] = DEFAULT_B_PRIME_VALUES,
    seed: int = 2009,
) -> ExperimentResult:
    """Figure 4(b): kernel background-knowledge estimation time vs ``b`` and input size."""
    result = ExperimentResult(
        experiment_id="Figure 4(b)",
        title="Kernel estimation time of background knowledge",
        x_label="b value",
        y_label="efficiency (sec)",
    )
    for size in input_sizes:
        table = generate_adult(size, seed=seed)
        times = []
        for b in b_values:
            start = time.perf_counter()
            kernel_prior(table, b)
            times.append(time.perf_counter() - start)
        result.add_series(f"input-size={size}", list(b_values), times)
    return result


# ---------------------------------------------------------------------------
# Figure 5: general utility measures
# ---------------------------------------------------------------------------


def _general_utility(
    table: MicrodataTable,
    parameter_sets: tuple[PrivacyParameters, ...],
    metric: str,
    session: Session | None = None,
) -> dict[str, list[float]]:
    session = session or Session(table)
    values: dict[str, list[float]] = {name: [] for name in MODEL_NAMES}
    for parameters in parameter_sets:
        releases = four_model_releases(table, parameters, session=session)
        for name in MODEL_NAMES:
            release = releases[name].release
            if metric == "dm":
                values[name].append(discernibility_metric(release))
            else:
                values[name].append(global_certainty_penalty(release))
    return values


def figure_5a(
    table: MicrodataTable,
    *,
    parameter_sets: tuple[PrivacyParameters, ...] = TABLE_V,
    session: Session | None = None,
) -> ExperimentResult:
    """Figure 5(a): Discernibility Metric of the four models."""
    values = _general_utility(table, parameter_sets, "dm", session=session)
    result = ExperimentResult(
        experiment_id="Figure 5(a)",
        title="Discernibility metric (DM)",
        x_label="privacy parameter",
        y_label="discernibility metric",
    )
    labels = [parameters.name for parameters in parameter_sets]
    for name in MODEL_NAMES:
        result.add_series(name, labels, values[name])
    return result


def figure_5b(
    table: MicrodataTable,
    *,
    parameter_sets: tuple[PrivacyParameters, ...] = TABLE_V,
    session: Session | None = None,
) -> ExperimentResult:
    """Figure 5(b): Global Certainty Penalty of the four models."""
    values = _general_utility(table, parameter_sets, "gcp", session=session)
    result = ExperimentResult(
        experiment_id="Figure 5(b)",
        title="Global certainty penalty (GCP)",
        x_label="privacy parameter",
        y_label="GCP cost",
    )
    labels = [parameters.name for parameters in parameter_sets]
    for name in MODEL_NAMES:
        result.add_series(name, labels, values[name])
    return result


# ---------------------------------------------------------------------------
# Figure 6: aggregate query answering
# ---------------------------------------------------------------------------


def figure_6a(
    table: MicrodataTable,
    parameters: PrivacyParameters,
    *,
    qd_values: tuple[int, ...] = (2, 3, 4, 5, 6),
    selectivity: float = 0.07,
    n_queries: int = 200,
    seed: int = 7,
    session: Session | None = None,
) -> ExperimentResult:
    """Figure 6(a): average relative query error vs query dimension ``qd``."""
    releases = four_model_releases(table, parameters, session=session)
    result = ExperimentResult(
        experiment_id="Figure 6(a)",
        title=f"Aggregate query error vs query dimension, {parameters.describe()}",
        x_label="qd value",
        y_label="aggregate relative error (%)",
    )
    errors_per_model: dict[str, list[float]] = {name: [] for name in MODEL_NAMES}
    for qd in qd_values:
        generator = QueryWorkloadGenerator(
            table, query_dimension=qd, selectivity=selectivity, seed=seed
        )
        queries = generator.generate(n_queries)
        for name in MODEL_NAMES:
            errors_per_model[name].append(
                average_relative_error(releases[name].release, queries)
            )
    for name in MODEL_NAMES:
        result.add_series(name, list(qd_values), errors_per_model[name])
    return result


def figure_6b(
    table: MicrodataTable,
    parameters: PrivacyParameters,
    *,
    selectivity_values: tuple[float, ...] = (0.03, 0.05, 0.07, 0.1, 0.12),
    query_dimension: int = 3,
    n_queries: int = 200,
    seed: int = 7,
    session: Session | None = None,
) -> ExperimentResult:
    """Figure 6(b): average relative query error vs query selectivity ``sel``."""
    releases = four_model_releases(table, parameters, session=session)
    result = ExperimentResult(
        experiment_id="Figure 6(b)",
        title=f"Aggregate query error vs selectivity, {parameters.describe()}",
        x_label="sel value",
        y_label="aggregate relative error (%)",
    )
    errors_per_model: dict[str, list[float]] = {name: [] for name in MODEL_NAMES}
    for selectivity in selectivity_values:
        generator = QueryWorkloadGenerator(
            table, query_dimension=query_dimension, selectivity=selectivity, seed=seed
        )
        queries = generator.generate(n_queries)
        for name in MODEL_NAMES:
            errors_per_model[name].append(
                average_relative_error(releases[name].release, queries)
            )
    for name in MODEL_NAMES:
        result.add_series(name, list(selectivity_values), errors_per_model[name])
    return result
