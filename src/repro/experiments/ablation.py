"""Ablation experiments for the design choices called out in DESIGN.md.

These are not figures from the paper; they probe the sensitivity of the
reproduction to choices the paper makes (or claims are unimportant):

* :func:`ablation_kernel_choice` - the paper argues (Section II-C) that the
  kernel function matters far less than the bandwidth; this experiment
  measures the worst-case disclosure risk of (B,t)-private releases built
  with different kernels.
* :func:`ablation_distance_measure` - how the choice of distance measure
  (JS, EMD, the paper's smoothed JS) changes the measured disclosure risk of
  one release.
* :func:`ablation_inference_method` - accuracy/latency trade-off of the
  Omega-estimate against exact inference as the group size grows.
* :func:`ablation_mondrian_split` - widest-dimension vs round-robin
  dimension selection in Mondrian (utility impact).
"""

from __future__ import annotations

import time

import numpy as np

from repro.anonymize.anonymizer import anonymize
from repro.data.table import MicrodataTable
from repro.exceptions import ExperimentError
from repro.experiments.config import PrivacyParameters
from repro.experiments.results import ExperimentResult
from repro.inference.exact import exact_posterior, group_sensitive_counts
from repro.inference.omega import omega_posterior
from repro.knowledge.kernels import kernel_names
from repro.knowledge.prior import kernel_prior
from repro.privacy.disclosure import tuple_disclosure_risks, worst_case_disclosure_risk
from repro.privacy.measures import (
    EMDDistance,
    JSDivergence,
    sensitive_distance_measure,
)
from repro.privacy.models import BTPrivacy
from repro.utility.metrics import discernibility_metric, global_certainty_penalty


def ablation_kernel_choice(
    table: MicrodataTable,
    parameters: PrivacyParameters,
    *,
    kernels: tuple[str, ...] = ("epanechnikov", "uniform", "triangular", "biweight", "gaussian"),
    adversary_b: float = 0.3,
) -> ExperimentResult:
    """Worst-case disclosure risk of (B,t)-private releases built with different kernels."""
    unknown = [name for name in kernels if name not in kernel_names()]
    if unknown:
        raise ExperimentError(f"unknown kernels requested: {unknown}")
    measure = sensitive_distance_measure(table)
    sensitive_codes = table.sensitive_codes()
    priors = kernel_prior(table, adversary_b)
    result = ExperimentResult(
        experiment_id="Ablation A1",
        title=f"Kernel choice for (B,t)-privacy, {parameters.describe()}",
        x_label="kernel",
        y_label="worst-case disclosure risk / groups",
    )
    risks, groups = [], []
    for kernel in kernels:
        model = BTPrivacy(parameters.b, parameters.t, kernel=kernel)
        release = anonymize(table, model, k=parameters.k).release
        risks.append(
            worst_case_disclosure_risk(priors, sensitive_codes, release.groups, measure)
        )
        groups.append(float(release.n_groups))
    result.add_series("worst-case risk", list(kernels), risks)
    result.add_series("number of groups", list(kernels), groups)
    return result


def ablation_distance_measure(
    table: MicrodataTable,
    parameters: PrivacyParameters,
    *,
    adversary_b: float = 0.3,
) -> ExperimentResult:
    """Average and worst-case risk of one release under different distance measures."""
    release = anonymize(table, BTPrivacy(parameters.b, parameters.t), k=parameters.k).release
    priors = kernel_prior(table, adversary_b)
    sensitive_codes = table.sensitive_codes()
    measures = {
        "smoothed-js (paper)": sensitive_distance_measure(table),
        "js": JSDivergence(),
        "emd (ordered)": EMDDistance(),
    }
    result = ExperimentResult(
        experiment_id="Ablation A2",
        title=f"Distance measures on one (B,t)-private release, {parameters.describe()}",
        x_label="measure",
        y_label="disclosure risk",
    )
    worst, mean = [], []
    for measure in measures.values():
        risks = tuple_disclosure_risks(priors, sensitive_codes, release.groups, measure)
        worst.append(float(risks.max()))
        mean.append(float(risks.mean()))
    result.add_series("worst-case risk", list(measures), worst)
    result.add_series("mean risk", list(measures), mean)
    return result


def ablation_inference_method(
    table: MicrodataTable,
    *,
    group_sizes: tuple[int, ...] = (3, 5, 8, 10, 12),
    b: float = 0.3,
    repeats: int = 25,
    seed: int = 11,
) -> ExperimentResult:
    """Latency of exact inference vs the Omega-estimate as group size grows."""
    if repeats <= 0:
        raise ExperimentError("repeats must be positive")
    rng = np.random.default_rng(seed)
    priors = kernel_prior(table, b)
    sensitive_codes = table.sensitive_codes()
    m = table.sensitive_domain().size
    result = ExperimentResult(
        experiment_id="Ablation A3",
        title=f"Inference cost: exact vs Omega-estimate (b={b:g})",
        x_label="group size",
        y_label="seconds per group",
    )
    exact_times, omega_times = [], []
    for group_size in group_sizes:
        exact_total = 0.0
        omega_total = 0.0
        for _ in range(repeats):
            indices = rng.choice(table.n_rows, size=group_size, replace=False)
            prior = priors.matrix[indices]
            counts = group_sensitive_counts(sensitive_codes[indices], m)
            start = time.perf_counter()
            exact_posterior(prior, counts)
            exact_total += time.perf_counter() - start
            start = time.perf_counter()
            omega_posterior(prior, counts)
            omega_total += time.perf_counter() - start
        exact_times.append(exact_total / repeats)
        omega_times.append(omega_total / repeats)
    result.add_series("exact inference", list(group_sizes), exact_times)
    result.add_series("omega-estimate", list(group_sizes), omega_times)
    return result


def ablation_mondrian_split(
    table: MicrodataTable,
    parameters: PrivacyParameters,
) -> ExperimentResult:
    """Utility impact of the Mondrian dimension-selection heuristic."""
    result = ExperimentResult(
        experiment_id="Ablation A4",
        title=f"Mondrian split strategy, {parameters.describe()}",
        x_label="strategy",
        y_label="utility cost",
    )
    strategies = ("widest", "round_robin")
    dm_values, gcp_values = [], []
    for strategy in strategies:
        release = anonymize(
            table,
            BTPrivacy(parameters.b, parameters.t),
            k=parameters.k,
            split_strategy=strategy,
        ).release
        dm_values.append(discernibility_metric(release))
        gcp_values.append(global_certainty_penalty(release))
    result.add_series("discernibility metric", list(strategies), dm_values)
    result.add_series("global certainty penalty", list(strategies), gcp_values)
    return result
