"""Experiment configuration: the Table V privacy parameter sets.

The paper evaluates every experiment against four parameter sets (Table V),
each combining a k-anonymity parameter, an l-diversity parameter, a
t-closeness / (B,t) threshold ``t`` and a publisher bandwidth ``b``:

=======  ===  ===  =====  ===
name      k    l     t     b
=======  ===  ===  =====  ===
para1     3    3   0.25   0.3
para2     4    4   0.20   0.3
para3     5    5   0.15   0.3
para4     6    6   0.10   0.3
=======  ===  ===  =====  ===

:func:`build_models` turns one parameter set into the four privacy models
compared throughout Section V (each conjoined with k-anonymity, exactly as the
paper does to also protect identity disclosure).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.table import MicrodataTable
from repro.exceptions import ExperimentError
from repro.knowledge.prior import PriorBeliefs
from repro.privacy.models import (
    BTPrivacy,
    CompositeModel,
    DistinctLDiversity,
    KAnonymity,
    PrivacyModel,
    ProbabilisticLDiversity,
    TCloseness,
)

MODEL_NAMES = (
    "distinct-l-diversity",
    "probabilistic-l-diversity",
    "t-closeness",
    "(B,t)-privacy",
)


@dataclass(frozen=True)
class PrivacyParameters:
    """One row of Table V."""

    name: str
    k: int
    l: int
    t: float
    b: float

    def describe(self) -> str:
        """Human-readable summary, e.g. ``para1(k=3, l=3, t=0.25, b=0.3)``."""
        return f"{self.name}(k={self.k}, l={self.l}, t={self.t:g}, b={self.b:g})"


PARA1 = PrivacyParameters("para1", k=3, l=3, t=0.25, b=0.3)
PARA2 = PrivacyParameters("para2", k=4, l=4, t=0.20, b=0.3)
PARA3 = PrivacyParameters("para3", k=5, l=5, t=0.15, b=0.3)
PARA4 = PrivacyParameters("para4", k=6, l=6, t=0.10, b=0.3)

TABLE_V = (PARA1, PARA2, PARA3, PARA4)


def parameters_by_name(name: str) -> PrivacyParameters:
    """Look up a Table V parameter set by name (``"para1"`` ... ``"para4"``)."""
    for parameters in TABLE_V:
        if parameters.name == name:
            return parameters
    raise ExperimentError(f"unknown parameter set {name!r}; available: para1..para4")


def build_models(
    parameters: PrivacyParameters,
    *,
    with_k_anonymity: bool = True,
    shared_priors: PriorBeliefs | None = None,
    table: MicrodataTable | None = None,
) -> dict[str, PrivacyModel]:
    """The four privacy models of Section V configured from one parameter set.

    Parameters
    ----------
    parameters:
        A Table V row.
    with_k_anonymity:
        Conjoin each model with ``k``-anonymity (the paper's setup).
    shared_priors, table:
        Optionally inject precomputed kernel priors into the (B,t) model so
        several experiments can reuse one (expensive) estimation; both must be
        given together.
    """
    bt = BTPrivacy(parameters.b, parameters.t)
    if shared_priors is not None:
        if table is None:
            raise ExperimentError("shared_priors requires the table they were computed from")
        bt.set_priors(shared_priors, table.sensitive_codes(), table.sensitive_domain().size)
    models: dict[str, PrivacyModel] = {
        "distinct-l-diversity": DistinctLDiversity(parameters.l),
        "probabilistic-l-diversity": ProbabilisticLDiversity(parameters.l),
        "t-closeness": TCloseness(parameters.t),
        "(B,t)-privacy": bt,
    }
    if with_k_anonymity:
        models = {
            name: CompositeModel([KAnonymity(parameters.k), model])
            for name, model in models.items()
        }
    return models
