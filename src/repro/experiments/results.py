"""Result containers shared by all experiment runners.

Every experiment in :mod:`repro.experiments.figures` returns an
:class:`ExperimentResult`: a named collection of series, one per curve of the
corresponding figure in the paper.  The container knows how to render itself
as a plain-text table (the benchmark harness prints these so the figures can
be regenerated without any plotting dependency) and how to flatten itself into
rows for further processing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ExperimentError


@dataclass
class ExperimentSeries:
    """One curve of a figure: a label plus aligned x and y values."""

    label: str
    x: list
    y: list[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ExperimentError(
                f"series {self.label!r} has {len(self.x)} x values but {len(self.y)} y values"
            )


@dataclass
class ExperimentResult:
    """A reproduced table/figure: metadata plus the series it contains."""

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    series: list[ExperimentSeries] = field(default_factory=list)

    def add_series(self, label: str, x: list, y: list[float]) -> None:
        """Append one curve to the result."""
        self.series.append(ExperimentSeries(label=label, x=list(x), y=list(y)))

    def series_by_label(self, label: str) -> ExperimentSeries:
        """Find a series by its label."""
        for series in self.series:
            if series.label == label:
                return series
        raise ExperimentError(f"no series labelled {label!r} in {self.experiment_id}")

    def as_rows(self) -> list[dict[str, object]]:
        """Flatten into ``{series, x, y}`` rows."""
        rows: list[dict[str, object]] = []
        for series in self.series:
            for x_value, y_value in zip(series.x, series.y):
                rows.append({"series": series.label, "x": x_value, "y": y_value})
        return rows

    def render(self, *, float_format: str = "{:.4g}") -> str:
        """Render the result as an aligned plain-text table (one row per x value)."""
        if not self.series:
            raise ExperimentError(f"{self.experiment_id} has no series to render")
        x_values = list(self.series[0].x)
        for series in self.series[1:]:
            if list(series.x) != x_values:
                return self._render_long(float_format)
        header = [self.x_label] + [series.label for series in self.series]
        rows = []
        for position, x_value in enumerate(x_values):
            row = [str(x_value)]
            for series in self.series:
                row.append(float_format.format(series.y[position]))
            rows.append(row)
        return self._format_table(header, rows)

    def _render_long(self, float_format: str) -> str:
        header = ["series", self.x_label, self.y_label]
        rows = [
            [str(row["series"]), str(row["x"]), float_format.format(row["y"])]
            for row in self.as_rows()
        ]
        return self._format_table(header, rows)

    def _format_table(self, header: list[str], rows: list[list[str]]) -> str:
        widths = [len(column) for column in header]
        for row in rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [
            f"{self.experiment_id}: {self.title}",
            "  " + "  ".join(name.ljust(widths[i]) for i, name in enumerate(header)),
            "  " + "  ".join("-" * widths[i] for i in range(len(header))),
        ]
        for row in rows:
            lines.append("  " + "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)
