"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers can
catch any error raised by this package with a single ``except`` clause while
still being able to distinguish configuration problems from data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SchemaError(ReproError):
    """Raised when a table schema is inconsistent or an attribute is unknown."""


class DataError(ReproError):
    """Raised when supplied microdata is malformed (wrong arity, bad values)."""


class HierarchyError(ReproError):
    """Raised when a generalization hierarchy is malformed or a value is missing."""


class KnowledgeError(ReproError):
    """Raised for invalid background-knowledge configuration (bad bandwidths, kernels)."""


class InferenceError(ReproError):
    """Raised when posterior-belief inference receives inconsistent inputs."""


class PrivacyModelError(ReproError):
    """Raised when a privacy model is configured with invalid parameters."""


class AnonymizationError(ReproError):
    """Raised when an anonymization algorithm cannot produce a valid release."""


class AuditError(ReproError):
    """Raised when a skyline audit is configured inconsistently."""


class UtilityError(ReproError):
    """Raised when a utility metric or query workload is misconfigured."""


class ExperimentError(ReproError):
    """Raised when an experiment runner is configured inconsistently."""


class StreamError(ReproError):
    """Raised when an incremental publication stream is used inconsistently."""


class ServeError(ReproError):
    """Raised when the serving daemon is misconfigured or a request is invalid."""


class RegistryError(ReproError):
    """Raised for invalid plugin registrations (duplicate or malformed names)."""


class PipelineError(ReproError):
    """Raised when a pipeline or sweep is configured inconsistently."""
