"""Module entry point so that ``python -m repro`` runs the CLI."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
