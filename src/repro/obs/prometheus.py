"""Prometheus text exposition of the daemon's metrics snapshot.

``GET /metrics`` keeps its JSON document; ``GET /metrics?format=prometheus``
(and the ``/metrics.prom`` alias) render the *same* snapshot - the
:class:`~repro.stats.CounterSet` / :class:`~repro.stats.Histogram` summaries
plus live queue/pool gauges - in the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ version
0.0.4, so any standard scraper can ingest the daemon without an adapter.

Mapping:

* counters -> ``repro_server_<name>_total`` and
  ``repro_stream_<name>_total{stream="..."}``
* histograms -> summary families (``{quantile="0.5|0.95|0.99"}`` +
  ``_sum`` / ``_count``), with window min/max as ``_min`` / ``_max`` gauges
* registry state -> per-stream gauges (versions, rows, groups, satisfied,
  drift, queue depth/high-water/bounds, poisoned) and pool gauges
  (workers, restarts)

The renderer is a pure function over the ``/metrics`` JSON payload, so the
two representations can never drift apart.
"""

from __future__ import annotations

from typing import Any, Mapping

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Per-stream gauge fields of the ``/metrics`` stream summaries.
_STREAM_GAUGES = (
    ("versions", "Published versions in the stream's lineage."),
    ("rows", "Rows in the latest published version."),
    ("groups", "Anonymized groups in the latest published version."),
    ("satisfied", "1 when the latest version satisfies its skyline, else 0."),
    ("drift_rows", "Accumulated partition drift toward the next compaction."),
    ("queue_depth", "Mutation batches waiting for the stream's worker."),
    ("queue_depth_rows", "Rows pinned by queued mutation batches."),
    ("queue_high_water", "Highest observed queued-batch count."),
    ("queue_high_water_rows", "Highest observed queued-row count."),
    ("max_queue_batches", "Bound on queued batches (429 beyond it)."),
    ("max_queued_rows", "Bound on queued rows (429 beyond it)."),
    ("poisoned", "1 when the stream is poisoned (writes 409), else 0."),
)

_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


class _Family:
    """One metric family: TYPE/HELP header plus its sample lines."""

    def __init__(self, name: str, kind: str, help_text: str):
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.samples: list[tuple[str, dict[str, str], Any]] = []

    def add(self, value: Any, labels: Mapping[str, str] | None = None, suffix: str = "") -> None:
        if value is None:
            return
        self.samples.append((suffix, dict(labels or {}), value))

    def lines(self) -> list[str]:
        if not self.samples:
            return []
        out = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for suffix, labels, value in self.samples:
            rendered = ",".join(
                f'{key}="{_escape(str(labels[key]))}"' for key in sorted(labels)
            )
            label_part = f"{{{rendered}}}" if rendered else ""
            out.append(f"{self.name}{suffix}{label_part} {_format_value(value)}")
        return out


class _Registry:
    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    def family(self, name: str, kind: str, help_text: str) -> _Family:
        if name not in self._families:
            self._families[name] = _Family(name, kind, help_text)
        return self._families[name]

    def render(self) -> str:
        lines: list[str] = []
        for name in sorted(self._families):
            lines.extend(self._families[name].lines())
        return "\n".join(lines) + "\n"


def _summary_family(
    registry: _Registry,
    name: str,
    summary: Mapping[str, Any],
    help_text: str,
    labels: Mapping[str, str] | None = None,
) -> None:
    """Render one ``Histogram.summary()`` dict as a Prometheus summary."""
    family = registry.family(name, "summary", help_text)
    for quantile, key in _QUANTILES:
        family.add(summary.get(key), {**(labels or {}), "quantile": quantile})
    family.add(summary.get("count", 0), labels, suffix="_count")
    count = summary.get("count") or 0
    mean = summary.get("mean")
    family.add(
        (mean * count) if mean is not None else 0.0, labels, suffix="_sum"
    )
    for bound in ("min", "max"):
        registry.family(
            f"{name}_{bound}",
            "gauge",
            f"{bound[0].upper()}{bound[1:]} of the recent {name} window.",
        ).add(summary.get(bound), labels)


def render(payload: Mapping[str, Any]) -> str:
    """The ``/metrics`` JSON payload in Prometheus text format 0.0.4."""
    registry = _Registry()
    server = payload.get("server", {})
    registry.family(
        "repro_server_uptime_seconds", "gauge", "Seconds since the daemon started."
    ).add(server.get("uptime_seconds"))
    for name, value in sorted(server.get("counters", {}).items()):
        registry.family(
            f"repro_server_{name}_total", "counter", f"Daemon-wide {name} count."
        ).add(value)
    for kind in ("read", "write"):
        summary = server.get(f"{kind}_seconds")
        if summary:
            _summary_family(
                registry,
                f"repro_server_{kind}_seconds",
                summary,
                f"Latency of handled {kind} requests in seconds.",
            )
    pool = server.get("publication_pool")
    if pool:
        registry.family(
            "repro_pool_workers", "gauge", "Publication worker processes in the pool."
        ).add(pool.get("workers"))
        registry.family(
            "repro_pool_restarts_total",
            "counter",
            "Publication workers respawned after a crash or timeout.",
        ).add(pool.get("restarts"))

    for stream_name, stream in sorted(payload.get("streams", {}).items()):
        labels = {"stream": stream_name}
        for field, help_text in _STREAM_GAUGES:
            value = stream.get(field)
            if field == "poisoned":
                value = 0 if value is None else 1
            registry.family(f"repro_stream_{field}", "gauge", help_text).add(
                value, labels
            )
        for name, value in sorted(stream.get("counters", {}).items()):
            registry.family(
                f"repro_stream_{name}_total",
                "counter",
                f"Per-stream {name} count.",
            ).add(value, labels)
        summary = stream.get("publish_seconds")
        if summary:
            _summary_family(
                registry,
                "repro_stream_publish_seconds",
                summary,
                "Publication latency per coalesced tick in seconds.",
                labels,
            )
    return registry.render()


__all__ = ["render", "CONTENT_TYPE"]
