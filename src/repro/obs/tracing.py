"""Hierarchical span tracing for the publish path.

A :class:`Tracer` produces nested :class:`Span`\\ s through context managers::

    tracer = Tracer()
    with tracer.span("publish", stream="census"):
        with tracer.span("prior"):
            ...
    root = tracer.take_root()          # the completed "publish" span tree

Design constraints, in order:

* **Cheap enough to leave on.**  An enabled span is two
  ``time.perf_counter()`` calls plus one small object; the publish path
  opens a handful per version, so tracing stays on by default
  (``BENCH_stream.json`` gates the measured overhead at <= 5%).
* **A no-op when disabled.**  ``Tracer(enabled=False).span(...)`` returns a
  shared null context manager - no allocation, no timing, no bookkeeping -
  so deep instrumentation (per-block contractions, per-adversary audits)
  costs nothing when nobody is looking.
* **Thread-safe.**  Span nesting lives in a per-thread stack, so many
  threads (the daemon's per-stream workers) can trace through one
  ``Tracer`` concurrently without seeing each other's spans; every thread
  retrieves its own finished root with :meth:`Tracer.take_root`.
* **Serializable.**  :meth:`Span.to_dict` / :meth:`Span.from_dict` round-trip
  a whole tree through JSON, which is how publication-pool workers ship
  their publish trace back over the job ``Pipe`` so the parent can stitch
  it under the daemon-side span (:meth:`Span.adopt`).

Code that is too deep to thread a tracer through (the prior backend, the
audit engine) reads the *ambient* tracer instead: ``current_tracer()``
returns whatever tracer the caller activated on this thread via
``with tracer.activate():`` - and the shared no-op :data:`NULL_TRACER`
otherwise, so library code can always instrument unconditionally.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from typing import Any, Iterator


def new_trace_id() -> str:
    """A fresh 32-hex-digit trace id (one per served request)."""
    return uuid.uuid4().hex


class Span:
    """One timed operation: name, start/duration, attributes, children.

    ``start_s`` is an offset in seconds from the root span's start (0.0 for
    the root itself) taken from the monotonic clock, so a serialized tree
    is self-consistent even when stitched across process boundaries.
    """

    __slots__ = ("name", "start_s", "duration_s", "attributes", "children")

    def __init__(self, name: str, attributes: dict[str, Any] | None = None):
        self.name = str(name)
        self.start_s = 0.0
        self.duration_s = 0.0
        self.attributes: dict[str, Any] = dict(attributes) if attributes else {}
        self.children: list[Span] = []

    def annotate(self, **attributes: Any) -> "Span":
        """Attach JSON-able key/value attributes to this span."""
        self.attributes.update(attributes)
        return self

    def adopt(self, child: "Span") -> "Span":
        """Stitch a foreign (e.g. deserialized worker) span under this one."""
        self.children.append(child)
        return child

    def child(self, name: str) -> "Span | None":
        """The first direct child with ``name`` (or ``None``)."""
        for span in self.children:
            if span.name == name:
                return span
        return None

    def find(self, name: str) -> "Span | None":
        """Depth-first search for the first descendant named ``name``."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self, _origin: float | None = None) -> dict[str, Any]:
        """A JSON-able tree; child ``start_s`` are offsets from the root."""
        origin = self.start_s if _origin is None else _origin
        return {
            "name": self.name,
            "start_s": self.start_s - origin,
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
            "children": [child.to_dict(origin) for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Span":
        span = cls(payload["name"], payload.get("attributes"))
        span.start_s = float(payload.get("start_s", 0.0))
        span.duration_s = float(payload.get("duration_s", 0.0))
        span.children = [cls.from_dict(child) for child in payload.get("children", ())]
        return span

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Span":
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, duration_s={self.duration_s:.6f}, "
            f"children={len(self.children)})"
        )


class _SpanContext:
    """Context manager that times a span and links it into the tree."""

    __slots__ = ("_tracer", "span", "_detached", "_start")

    def __init__(self, tracer: "Tracer", span: Span, detached: bool):
        self._tracer = tracer
        self.span = span
        self._detached = detached

    def __enter__(self) -> Span:
        self._start = time.perf_counter()
        self.span.start_s = self._start
        if not self._detached:
            self._tracer._push(self.span)
        return self.span

    def __exit__(self, *exc_info: Any) -> None:
        self.span.duration_s = time.perf_counter() - self._start
        if not self._detached:
            self._tracer._pop(self.span)


class _NullSpan(Span):
    """The shared do-nothing span handed out by a disabled tracer."""

    __slots__ = ()

    def annotate(self, **attributes: Any) -> "Span":
        return self

    def adopt(self, child: Span) -> Span:
        return child


class _NullContext:
    __slots__ = ("span",)

    def __init__(self) -> None:
        self.span = _NullSpan("null")

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class Tracer:
    """Produces nested spans; per-thread nesting, shared across threads."""

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._local = threading.local()

    # -- span creation ---------------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> "_SpanContext | _NullContext":
        """A nested span; a true no-op when the tracer is disabled."""
        if not self.enabled:
            return _NULL_CONTEXT
        return _SpanContext(self, Span(name, attributes), detached=False)

    def timed(self, name: str, **attributes: Any) -> _SpanContext:
        """A span that *always* measures its duration.

        Stage boundaries whose timings are part of the data model (the
        publisher's ``StreamDelta.timings``) use this: with the tracer
        enabled the span joins the tree like any other; disabled, it is a
        detached timer - measured, returned to the caller, never retained -
        so the derived timings stay byte-compatible either way.
        """
        return _SpanContext(self, Span(name, attributes), detached=not self.enabled)

    # -- per-thread tree bookkeeping -------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - unbalanced exits
            stack.remove(span)
        if stack:
            stack[-1].children.append(span)
        else:
            self._local.last_root = span

    def current(self) -> Span | None:
        """The innermost open span on this thread (``None`` outside any)."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def take_root(self) -> Span | None:
        """Pop this thread's most recently completed top-level span tree."""
        root = getattr(self._local, "last_root", None)
        self._local.last_root = None
        return root

    # -- ambient activation ----------------------------------------------------------

    def activate(self) -> "_Activation":
        """Make this the thread's ambient tracer (see :func:`current_tracer`)."""
        return _Activation(self)

    def attach(self, parent: Span | None) -> "_Attachment":
        """Adopt ``parent`` as this thread's enclosing span (worker threads).

        A pool thread starts with an empty span stack, so spans it opens
        would each become their own root - and two concurrent contractions
        sharing one pool would interleave their tiles.  The dispatching
        thread captures its open span (``tracer.current()``) and each worker
        wraps its slice in ``with tracer.attach(parent):`` so everything it
        opens nests under the owning span.  The borrowed parent is seeded
        onto the stack and removed on exit *without* being re-appended
        anywhere - it is still open on, and owned by, the dispatching
        thread.  Appending finished children to the shared parent is safe:
        ``list.append`` is atomic under the GIL.  Attaching ``None`` (or on
        a disabled tracer) is a no-op.
        """
        return _Attachment(self, parent if self.enabled else None)


class _Attachment:
    __slots__ = ("_tracer", "_parent")

    def __init__(self, tracer: Tracer, parent: Span | None):
        self._tracer = tracer
        self._parent = parent

    def __enter__(self) -> Span | None:
        if self._parent is not None:
            self._tracer._stack().append(self._parent)
        return self._parent

    def __exit__(self, *exc_info: Any) -> None:
        if self._parent is None:
            return
        stack = self._tracer._stack()
        if stack and stack[-1] is self._parent:
            stack.pop()
        elif self._parent in stack:  # pragma: no cover - unbalanced exits
            stack.remove(self._parent)


class _Activation:
    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Tracer):
        self._tracer = tracer

    def __enter__(self) -> Tracer:
        self._previous = getattr(_AMBIENT, "tracer", None)
        _AMBIENT.tracer = self._tracer
        return self._tracer

    def __exit__(self, *exc_info: Any) -> None:
        _AMBIENT.tracer = self._previous


_AMBIENT = threading.local()

#: The shared disabled tracer: every ``span()`` is a no-op.
NULL_TRACER = Tracer(enabled=False)


def current_tracer() -> Tracer:
    """The tracer activated on this thread, or :data:`NULL_TRACER`."""
    tracer = getattr(_AMBIENT, "tracer", None)
    return tracer if tracer is not None else NULL_TRACER
