"""Structured (JSON-lines) logging on top of stdlib :mod:`logging`.

The serving daemon logs one JSON object per line so a collector can ingest
request traces, slow-publish warnings and worker lifecycle events without
regex scraping::

    {"ts": "2026-08-08T12:00:00.123456+00:00", "level": "WARNING",
     "logger": "repro.serve", "message": "slow publish", "stream": "census",
     "trace_id": "f3b4...", "publish_seconds": 7.25}

Anything passed via ``logger.info(..., extra={...})`` lands as a top-level
JSON field - that is how per-request trace ids and stream/slot context
travel on every record.  :func:`configure` wires a stderr handler in either
``json`` or classic ``text`` format (the ``repro serve --log-level
--log-format`` flags call it).
"""

from __future__ import annotations

import datetime
import json
import logging
from typing import Any

#: LogRecord attributes that are plumbing, not payload; everything else a
#: caller attaches through ``extra=`` becomes a top-level JSON field.
_RESERVED = frozenset(
    (
        "args", "asctime", "created", "exc_info", "exc_text", "filename",
        "funcName", "levelname", "levelno", "lineno", "message", "module",
        "msecs", "msg", "name", "pathname", "process", "processName",
        "relativeCreated", "stack_info", "taskName", "thread", "threadName",
    )
)

LOG_FORMATS = ("text", "json")
LOG_LEVELS = ("debug", "info", "warning", "error")


class JsonFormatter(logging.Formatter):
    """Format every record as one sorted-keys JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = datetime.datetime.fromtimestamp(
            record.created, tz=datetime.timezone.utc
        )
        payload: dict[str, Any] = {
            "ts": stamp.isoformat(),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_") or key in payload:
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


class TextFormatter(logging.Formatter):
    """Classic human-readable lines, with the extras appended as k=v pairs."""

    def __init__(self) -> None:
        super().__init__("%(asctime)s %(levelname)s %(name)s: %(message)s")

    def format(self, record: logging.LogRecord) -> str:
        line = super().format(record)
        extras = [
            f"{key}={value}"
            for key, value in sorted(record.__dict__.items())
            if key not in _RESERVED and not key.startswith("_")
        ]
        return f"{line} [{' '.join(extras)}]" if extras else line


def configure(
    level: str = "info",
    log_format: str = "text",
    logger_name: str = "repro",
    stream: Any = None,
) -> logging.Logger:
    """Wire the ``repro`` logger hierarchy to stderr in the chosen format.

    Replaces any handler a previous call installed (the daemon may be
    restarted in-process, e.g. by tests), never touches the root logger,
    and returns the configured logger.
    """
    if log_format not in LOG_FORMATS:
        raise ValueError(f"unknown log format {log_format!r}; expected one of {LOG_FORMATS}")
    try:
        numeric = getattr(logging, level.upper())
    except AttributeError:
        raise ValueError(f"unknown log level {level!r}; expected one of {LOG_LEVELS}") from None
    logger = logging.getLogger(logger_name)
    logger.setLevel(numeric)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonFormatter() if log_format == "json" else TextFormatter())
    for stale in [h for h in logger.handlers if getattr(h, "_repro_obs", False)]:
        logger.removeHandler(stale)
    handler._repro_obs = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.propagate = False
    return logger
