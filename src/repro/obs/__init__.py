"""repro.obs: observability for the publish path.

Three stdlib-only pieces (see the submodules for detail):

* :mod:`repro.obs.tracing` - hierarchical :class:`Span` trees from a
  :class:`Tracer`, cheap enough to leave on, a no-op when disabled, and
  JSON-serializable so publication-pool workers can ship their publish
  trace back over the job pipe.
* :mod:`repro.obs.log` - a JSON-lines :class:`~repro.obs.log.JsonFormatter`
  on stdlib :mod:`logging` (``repro serve --log-level --log-format``), with
  per-request trace ids riding every record.
* :mod:`repro.obs.prometheus` - the ``/metrics`` snapshot rendered in the
  Prometheus text exposition format.
"""

from repro.obs.tracing import (
    NULL_TRACER,
    Span,
    Tracer,
    current_tracer,
    new_trace_id,
)

__all__ = [
    "NULL_TRACER",
    "Span",
    "Tracer",
    "current_tracer",
    "new_trace_id",
]
