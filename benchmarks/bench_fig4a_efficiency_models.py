"""Figure 4(a): Mondrian anonymization time for the four privacy models.

Paper shape: once the background knowledge is precomputed, building the
(B,t)-private table costs about as much as the other models (same order of
magnitude), and the running time does not explode as the requirement tightens.
"""

from conftest import BENCH_ROWS, record, write_bench_json

from repro.experiments.config import TABLE_V
from repro.experiments.figures import figure_4a


def test_fig4a_anonymization_time(benchmark, adult_table):
    result = benchmark.pedantic(
        lambda: figure_4a(adult_table, parameter_sets=TABLE_V),
        rounds=1,
        iterations=1,
    )
    record(result)
    metrics = {"rows": BENCH_ROWS}
    for series in result.series:
        slug = series.label.lower().replace("(", "").replace(")", "").replace(",", "")
        slug = slug.replace("-", "_").replace(" ", "_")
        metrics[f"{slug}_seconds"] = float(sum(series.y))
    write_bench_json("fig4", f"fig4a-rows-{BENCH_ROWS}", metrics)
    bt = result.series_by_label("(B,t)-privacy")
    others = [
        result.series_by_label(name)
        for name in ("distinct-l-diversity", "probabilistic-l-diversity", "t-closeness")
    ]
    for position in range(len(bt.x)):
        slowest_baseline = max(series.y[position] for series in others)
        # Same order of magnitude: within 30x of the slowest baseline partition time.
        assert bt.y[position] <= 30 * slowest_baseline + 1.0
    assert all(value > 0.0 for series in result.series for value in series.y)
