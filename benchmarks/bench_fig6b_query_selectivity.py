"""Figure 6(b): aggregate query answering error vs query selectivity sel.

Paper shape: relative error decreases as the selectivity grows (larger queries
are easier to answer from generalized data), and the (B,t)-private table is
comparable to the baselines throughout.
"""

from conftest import record

from repro.experiments.config import PARA1
from repro.experiments.figures import figure_6b


def test_fig6b_query_error_vs_selectivity(benchmark, adult_table):
    result = benchmark.pedantic(
        lambda: figure_6b(
            adult_table,
            PARA1,
            selectivity_values=(0.03, 0.05, 0.07, 0.1, 0.12),
            query_dimension=3,
            n_queries=200,
            seed=7,
        ),
        rounds=1,
        iterations=1,
    )
    record(result)
    for series in result.series:
        assert all(value >= 0.0 for value in series.y)
        # Overall decreasing trend: the largest selectivity is answered more
        # accurately than the smallest one.
        assert series.y[-1] <= series.y[0] * 1.25 + 1.0, series.label
    bt = result.series_by_label("(B,t)-privacy")
    for position in range(len(bt.x)):
        others = [
            result.series_by_label(name).y[position]
            for name in ("distinct-l-diversity", "probabilistic-l-diversity", "t-closeness")
        ]
        assert bt.y[position] <= 3 * max(others) + 5.0
