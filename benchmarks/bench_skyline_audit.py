"""Skyline audit engine vs the per-adversary attack loop (the PR-gated bench).

The engine's contract: auditing one release against a whole skyline
``{(B_i, t_i)}`` must be *numerically identical* to looping a
``BackgroundKnowledgeAttack`` per adversary while being at least
``REPRO_BENCH_MIN_SPEEDUP`` (default 1.2) times faster, because the batched
estimator shares every bandwidth-independent piece of the kernel regression.

Historical note on the floor: the engine used to be ~20x faster, because the
per-adversary loop paid a flat ``O(n^2 d)`` kernel sweep per bandwidth.
Since the factored contraction backend (PR 4) serves *every* consumer -
including the looped ``BackgroundKnowledgeAttack`` - the loop now rides the
same count-tensor machinery, and the engine's remaining edge is sharing one
backend fit (distance matrices, QI dedup, count tensor) across adversaries.
The whole system got faster; the *relative* spread shrank accordingly.

Scale knobs:

* ``REPRO_BENCH_AUDIT_ROWS``  - table size (default 5000, the paper-scale
  demonstration; CI runs a smaller size);
* ``REPRO_BENCH_ADVERSARIES`` - skyline adversary count (default 4, the
  paper shape; other counts spread bandwidths over [0.1, 0.5]);
* ``REPRO_BENCH_MIN_SPEEDUP`` - gate on engine speedup (default 1.2).

The measured numbers land in ``BENCH_skyline_audit.json`` (section
``rows-<n>``), which CI regenerates and compares against the committed
baseline with ``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import bench_skyline, write_bench_json

from repro.anonymize.anonymizer import anonymize
from repro.audit import SkylineAuditEngine
from repro.data.adult import generate_adult
from repro.privacy.disclosure import BackgroundKnowledgeAttack
from repro.privacy.models import DistinctLDiversity

AUDIT_ROWS = int(os.environ.get("REPRO_BENCH_AUDIT_ROWS", "5000"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "1.2"))

# The paper's Section V skyline shape: by default four adversaries of
# increasing background knowledge, one shared disclosure budget
# (REPRO_BENCH_ADVERSARIES rescales the skyline for nightly dispatch runs).
SKYLINE = bench_skyline()
_ADVERSARY_SUFFIX = "" if len(SKYLINE) == 4 else f"-adv{len(SKYLINE)}"


def test_skyline_audit_engine_speedup():
    table = generate_adult(AUDIT_ROWS, seed=2009)
    release = anonymize(table, DistinctLDiversity(3), k=4).release
    groups = release.groups

    start = time.perf_counter()
    loop_results = [
        BackgroundKnowledgeAttack(table, b).attack(groups, t) for b, t in SKYLINE
    ]
    loop_seconds = time.perf_counter() - start

    start = time.perf_counter()
    engine = SkylineAuditEngine(table, SKYLINE)
    report = engine.audit(groups)
    engine_seconds = time.perf_counter() - start

    max_risk_difference = max(
        float(np.abs(entry.attack.risks - reference.risks).max())
        for entry, reference in zip(report.entries, loop_results)
    )
    speedup = loop_seconds / engine_seconds

    print(
        f"\nskyline audit: rows={AUDIT_ROWS} adversaries={len(SKYLINE)} "
        f"groups={release.n_groups} loop={loop_seconds:.3f}s "
        f"engine={engine_seconds:.3f}s speedup={speedup:.1f}x "
        f"max-risk-diff={max_risk_difference:.2e}"
    )
    write_bench_json(
        "skyline_audit",
        f"rows-{AUDIT_ROWS}{_ADVERSARY_SUFFIX}",
        {
            "rows": AUDIT_ROWS,
            "adversaries": len(SKYLINE),
            "groups": release.n_groups,
            "loop_seconds": loop_seconds,
            "engine_seconds": engine_seconds,
            "speedup": speedup,
            "max_risk_difference": max_risk_difference,
        },
    )

    # Numerically identical risks (the engine shares code with the attack path).
    assert max_risk_difference < 1e-9
    assert all(
        entry.attack.vulnerable_tuples == reference.vulnerable_tuples
        for entry, reference in zip(report.entries, loop_results)
    )
    assert speedup >= MIN_SPEEDUP, (
        f"skyline audit engine is only {speedup:.1f}x faster than the "
        f"per-adversary loop (required: {MIN_SPEEDUP:g}x)"
    )
