"""Figure 4(b): kernel background-knowledge estimation time vs b and input size.

Paper shape: estimating background knowledge dominates the anonymization time
and grows with the input size, but remains practical (the paper reports
minutes for 10K-25K tuples on 2005-era hardware; this Python reproduction uses
proportionally smaller inputs by default - scale with REPRO_BENCH_ROWS).
"""

from conftest import BENCH_ROWS, record, write_bench_json

from repro.experiments.figures import figure_4b


def test_fig4b_kernel_estimation_time(benchmark):
    sizes = tuple(sorted({max(500, BENCH_ROWS // 2), BENCH_ROWS, BENCH_ROWS * 2, BENCH_ROWS * 3}))
    result = benchmark.pedantic(
        lambda: figure_4b(input_sizes=sizes, b_values=(0.2, 0.3, 0.4, 0.5), seed=2009),
        rounds=1,
        iterations=1,
    )
    record(result)
    metrics = {"rows": BENCH_ROWS}
    for size, series in zip(sizes, result.series):
        metrics[f"size_{size}_seconds"] = float(sum(series.y))
    write_bench_json("fig4", f"fig4b-rows-{BENCH_ROWS}", metrics)
    # Cost grows with the input size (compare the same b across sizes).
    per_size = [series.y[1] for series in result.series]  # timing at b = 0.3
    assert per_size == sorted(per_size) or per_size[-1] > per_size[0]
    assert all(value > 0.0 for series in result.series for value in series.y)
