"""Figure 6(a): aggregate query answering error vs query dimension qd.

Paper shape: the (B,t)-private table answers aggregate COUNT queries about as
accurately as the other anonymized tables, and the relative error decreases as
the query dimension grows.
"""

from conftest import record

from repro.experiments.config import PARA1
from repro.experiments.figures import figure_6a


def test_fig6a_query_error_vs_dimension(benchmark, adult_table):
    result = benchmark.pedantic(
        lambda: figure_6a(
            adult_table,
            PARA1,
            qd_values=(2, 3, 4, 5, 6),
            selectivity=0.07,
            n_queries=200,
            seed=7,
        ),
        rounds=1,
        iterations=1,
    )
    record(result)
    bt = result.series_by_label("(B,t)-privacy")
    for position in range(len(bt.x)):
        others = [
            result.series_by_label(name).y[position]
            for name in ("distinct-l-diversity", "probabilistic-l-diversity", "t-closeness")
        ]
        # Comparable accuracy: within 3x of the worst baseline at every qd.
        assert bt.y[position] <= 3 * max(others) + 5.0
    assert all(value >= 0.0 for series in result.series for value in series.y)
