"""Figure 5(b): Global Certainty Penalty (GCP) of the four anonymized tables.

Paper shape: the (B,t)-private table's GCP is comparable to the baselines
across para1..para4.
"""

from conftest import record

from repro.experiments.config import TABLE_V
from repro.experiments.figures import figure_5b


def test_fig5b_global_certainty_penalty(benchmark, adult_table):
    result = benchmark.pedantic(
        lambda: figure_5b(adult_table, parameter_sets=TABLE_V),
        rounds=1,
        iterations=1,
    )
    record(result)
    n = adult_table.n_rows
    d = len(adult_table.quasi_identifier_names)
    bt = result.series_by_label("(B,t)-privacy")
    for series in result.series:
        # GCP is bounded by n*d (fully generalized table).
        assert all(0.0 < value <= n * d for value in series.y)
    for position in range(len(bt.x)):
        others = [
            result.series_by_label(name).y[position]
            for name in ("distinct-l-diversity", "probabilistic-l-diversity", "t-closeness")
        ]
        assert bt.y[position] <= 10 * max(others)
