"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table/figure of the paper's evaluation section
on a synthetic Adult-like table.  Two environment variables control the scale
(the defaults keep the full harness to a few minutes):

* ``REPRO_BENCH_ROWS``    - rows of the synthetic Adult table (default 2000).
* ``REPRO_BENCH_REPEATS`` - repeats for sampling-based experiments (default 30).

Each benchmark prints its reproduced figure as a plain-text table and also
writes it to ``benchmarks/results/<experiment>.txt`` so the numbers recorded in
EXPERIMENTS.md can be regenerated at any time.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.data.adult import generate_adult  # noqa: E402
from repro.experiments.results import ExperimentResult  # noqa: E402

BENCH_ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "2000"))
BENCH_REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "30"))
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def record(result: ExperimentResult) -> ExperimentResult:
    """Print a reproduced figure and persist it under benchmarks/results/."""
    text = result.render()
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = (
        result.experiment_id.lower()
        .replace(" ", "_")
        .replace("(", "")
        .replace(")", "")
        .replace(".", "")
    )
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
    return result


@pytest.fixture(scope="session")
def adult_table():
    """The synthetic Adult-like table shared by all figure benchmarks."""
    return generate_adult(BENCH_ROWS, seed=2009)
