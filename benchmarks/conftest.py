"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table/figure of the paper's evaluation section
on a synthetic Adult-like table.  Two environment variables control the scale
(the defaults keep the full harness to a few minutes):

* ``REPRO_BENCH_ROWS``    - rows of the synthetic Adult table (default 2000).
* ``REPRO_BENCH_REPEATS`` - repeats for sampling-based experiments (default 30).

Each benchmark prints its reproduced figure as a plain-text table and also
writes it to ``benchmarks/results/<experiment>.txt`` so the numbers recorded in
EXPERIMENTS.md can be regenerated at any time.

Perf-gated benchmarks additionally emit machine-readable ``BENCH_<name>.json``
files (at the repo root by default, overridable with ``REPRO_BENCH_JSON_DIR``)
through :func:`write_bench_json`.  Each file keeps the latest metrics per
*section* plus a bounded ``trajectory`` of past runs; CI regenerates the files
at a tiny scale and fails the build when a timing regresses beyond the
tolerance of ``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import json
import os
import sys
from datetime import datetime, timezone
from pathlib import Path

import numpy as np
import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.data.adult import generate_adult  # noqa: E402
from repro.experiments.results import ExperimentResult  # noqa: E402

BENCH_ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "2000"))
BENCH_REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "30"))
BENCH_ADVERSARIES = int(os.environ.get("REPRO_BENCH_ADVERSARIES", "4"))


def bench_skyline(adversaries: int | None = None) -> tuple[tuple[float, float], ...]:
    """The ``(B_i, t_i)`` audit skyline the gated benches share.

    The default four adversaries keep the paper's Section V shape (increasing
    background knowledge, one shared budget); other counts - e.g. the
    nightly workflow's ``adversaries`` dispatch input, or the commented
    paper-scale 8-adversary step - spread the bandwidths evenly over the
    same [0.1, 0.5] range.
    """
    count = BENCH_ADVERSARIES if adversaries is None else adversaries
    if count == 4:
        return ((0.1, 0.2), (0.2, 0.2), (0.3, 0.2), (0.5, 0.2))
    return tuple(
        (float(round(b, 3)), 0.2) for b in np.linspace(0.1, 0.5, count)
    )
RESULTS_DIR = Path(__file__).resolve().parent / "results"
REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_JSON_DIR = Path(os.environ.get("REPRO_BENCH_JSON_DIR", str(REPO_ROOT)))
_TRAJECTORY_LIMIT = 100


def write_bench_json(name: str, section: str, metrics: dict) -> Path:
    """Merge one section of metrics into ``BENCH_<name>.json`` (with trajectory).

    The file keeps the latest metrics of every section it has ever seen under
    ``sections`` (so a tiny CI run does not clobber a committed full-scale
    section) and appends each run to a bounded ``trajectory`` list, giving the
    repo a perf history that regression gates can compare against.
    """
    path = BENCH_JSON_DIR / f"BENCH_{name}.json"
    if path.exists():
        data = json.loads(path.read_text())
    else:
        data = {"benchmark": name, "sections": {}, "trajectory": []}
    metrics = {
        key: (float(f"{value:.6g}") if isinstance(value, float) else value)
        for key, value in metrics.items()
    }
    data.setdefault("sections", {})[section] = metrics
    data.setdefault("trajectory", []).append(
        {
            "section": section,
            "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            **metrics,
        }
    )
    data["trajectory"] = data["trajectory"][-_TRAJECTORY_LIMIT:]
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def record(result: ExperimentResult) -> ExperimentResult:
    """Print a reproduced figure and persist it under benchmarks/results/."""
    text = result.render()
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = (
        result.experiment_id.lower()
        .replace(" ", "_")
        .replace("(", "")
        .replace(")", "")
        .replace(".", "")
    )
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
    return result


@pytest.fixture(scope="session")
def adult_table():
    """The synthetic Adult-like table shared by all figure benchmarks."""
    return generate_adult(BENCH_ROWS, seed=2009)
