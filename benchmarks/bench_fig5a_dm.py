"""Figure 5(a): Discernibility Metric (DM) of the four anonymized tables.

Paper shape: the (B,t)-private table shows utility comparable to the three
baselines (same order of magnitude DM) across para1..para4, and DM grows as
the privacy requirement tightens.
"""

from conftest import record

from repro.experiments.config import TABLE_V
from repro.experiments.figures import figure_5a


def test_fig5a_discernibility_metric(benchmark, adult_table):
    result = benchmark.pedantic(
        lambda: figure_5a(adult_table, parameter_sets=TABLE_V),
        rounds=1,
        iterations=1,
    )
    record(result)
    n = adult_table.n_rows
    bt = result.series_by_label("(B,t)-privacy")
    for series in result.series:
        # DM is bounded between n (singleton groups) and n^2 (one group).
        assert all(n <= value <= n * n for value in series.y)
    for position in range(len(bt.x)):
        others = [
            result.series_by_label(name).y[position]
            for name in ("distinct-l-diversity", "probabilistic-l-diversity", "t-closeness")
        ]
        assert bt.y[position] <= 10 * max(others)
