"""Figure 3(b): continuity of worst-case disclosure risk over the (b1, b2) grid.

The publisher assigns bandwidth b1 to the first three QI attributes and b2 to
the remaining three; the adversary uses b' = 0.3.  Paper shape: the risk
surface varies continuously across the grid.
"""

import numpy as np
from conftest import record

from repro.experiments.figures import figure_3b


def test_fig3b_disclosure_risk_continuity_grid(benchmark, adult_table):
    result = benchmark.pedantic(
        lambda: figure_3b(
            adult_table,
            b1_values=(0.2, 0.3, 0.4, 0.5),
            b2_values=(0.2, 0.3, 0.4, 0.5),
            adversary_b=0.3,
            t=0.25,
            k=3,
        ),
        rounds=1,
        iterations=1,
    )
    record(result)
    grid = np.array([series.y for series in result.series])
    assert np.all((grid >= 0.0) & (grid <= 1.0))
    # Continuity along both axes of the (b1, b2) grid.
    assert np.abs(np.diff(grid, axis=0)).max() < 0.25
    assert np.abs(np.diff(grid, axis=1)).max() < 0.25
