"""Figure 3(a): continuity of worst-case disclosure risk in the publisher bandwidth b.

Paper shape: the worst-case disclosure risk changes smoothly (no jumps) as the
(B,t) table's bandwidth b varies, for adversaries of every knowledge level b'.
"""

import numpy as np
from conftest import record

from repro.experiments.figures import figure_3a


def test_fig3a_disclosure_risk_continuity(benchmark, adult_table):
    result = benchmark.pedantic(
        lambda: figure_3a(
            adult_table,
            table_b_values=(0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5),
            adversary_b_values=(0.2, 0.3, 0.4, 0.5),
            t=0.25,
            k=3,
        ),
        rounds=1,
        iterations=1,
    )
    record(result)
    for series in result.series:
        risks = np.asarray(series.y)
        assert np.all((risks >= 0.0) & (risks <= 1.0))
        # Continuity: adjacent publisher bandwidths change the risk by a bounded step.
        assert np.abs(np.diff(risks)).max() < 0.25, series.label
    # The matched point (b = b') always respects the configured threshold t.
    matched = result.series_by_label("b'=0.3")
    assert matched.y[matched.x.index(0.3)] <= 0.25 + 1e-9
