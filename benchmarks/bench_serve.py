"""The serving daemon under a mixed multi-stream workload (PR-gated).

Starts a real :class:`repro.serve.ServeApp` on an ephemeral port and drives
it over actual HTTP: several streams are created, writer threads fire
append/delete/update batches at every stream concurrently (so the per-stream
workers get genuine coalescing pressure), and reader threads hammer
historical versions and audit reports the whole time.  Two numbers are
gated:

* **mutations/sec** - accepted mutation batches per second of wall clock
  across all streams (each batch individually acknowledged with its
  published version; coalescing means batches >= publishes);
* **p99 read latency** - the 99th percentile of historical-version and
  audit GETs issued *while publications are in flight*.  Reads are answered
  lock-free from immutable versions, so this must stay flat however busy
  the writers are.

Scale knobs:

* ``REPRO_BENCH_SERVE_STREAMS``    - hosted streams (default 3);
* ``REPRO_BENCH_SERVE_SEED_ROWS``  - seed rows per stream (default 1000);
* ``REPRO_BENCH_SERVE_BATCH_ROWS`` - rows per append batch (default 60);
* ``REPRO_BENCH_SERVE_ROUNDS``     - mutation rounds per stream (default 4;
  each round fires one append, one delete and one update concurrently);
* ``REPRO_BENCH_SERVE_READERS``    - concurrent reader threads (default 4);
* ``REPRO_BENCH_SERVE_COALESCE_MS``- the daemon's coalescing window (default 25);
* ``REPRO_BENCH_SERVE_MIN_MUTATIONS_PER_SECOND`` - throughput gate (default 0.5);
* ``REPRO_BENCH_SERVE_MAX_READ_P99_SECONDS``     - latency gate (default 0.5).

The measured numbers land in ``BENCH_serve.json`` (section
``streams-<n>-seed-<rows>-rounds-<k>x<batch>``); CI regenerates the file at
a tiny size and gates it with ``benchmarks/check_regression.py``, whose
``*_per_second`` keys are floors and ``*_seconds`` keys are ceilings.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
import urllib.error
import urllib.request

from conftest import write_bench_json

from repro.data.adult import generate_adult
from repro.serve import ServeApp

STREAMS = int(os.environ.get("REPRO_BENCH_SERVE_STREAMS", "3"))
SEED_ROWS = int(os.environ.get("REPRO_BENCH_SERVE_SEED_ROWS", "1000"))
BATCH_ROWS = int(os.environ.get("REPRO_BENCH_SERVE_BATCH_ROWS", "60"))
ROUNDS = int(os.environ.get("REPRO_BENCH_SERVE_ROUNDS", "4"))
READERS = int(os.environ.get("REPRO_BENCH_SERVE_READERS", "4"))
COALESCE_MS = float(os.environ.get("REPRO_BENCH_SERVE_COALESCE_MS", "25"))
MIN_MUTATIONS_PER_SECOND = float(
    os.environ.get("REPRO_BENCH_SERVE_MIN_MUTATIONS_PER_SECOND", "0.5")
)
MAX_READ_P99_SECONDS = float(
    os.environ.get("REPRO_BENCH_SERVE_MAX_READ_P99_SECONDS", "0.5")
)

#: One stream config for every hosted stream (modest k keeps versions fast).
CONFIG = {"model": "bt", "b": 0.3, "t": 0.25, "k": 2}


def _json_rows(table):
    return [
        {
            name: (value.item() if hasattr(value, "item") else value)
            for name, value in table.row(index).items()
        }
        for index in range(table.n_rows)
    ]


class _Client:
    """Minimal JSON-over-HTTP client against the benched daemon."""

    def __init__(self, port: int):
        self.base = f"http://127.0.0.1:{port}"

    def request(self, method: str, path: str, payload=None, timeout=600):
        body = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            self.base + path, data=body, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())


def test_serve_mixed_workload_throughput_and_read_latency(tmp_path):
    app = ServeApp(tmp_path / "serve-data", port=0, coalesce_ms=COALESCE_MS)
    loop = asyncio.new_event_loop()
    loop_thread = threading.Thread(target=loop.run_forever, daemon=True)
    loop_thread.start()
    asyncio.run_coroutine_threadsafe(app.start(), loop).result(60)
    client = _Client(app.port)

    rows_per_stream = SEED_ROWS + ROUNDS * BATCH_ROWS
    names = [f"stream-{index}" for index in range(STREAMS)]
    pools = {}
    try:
        # -- create every stream (not measured: one-off seeding) -----------------------
        for index, name in enumerate(names):
            table = generate_adult(rows_per_stream, seed=100 + index)
            rows = _json_rows(table)
            pools[name] = rows[SEED_ROWS:]
            status, payload = client.request(
                "POST", "/streams", {"name": name, "rows": rows[:SEED_ROWS],
                                     "config": CONFIG},
            )
            assert status == 201, payload

        # -- mixed read/write phase (measured) ------------------------------------------
        errors: list[str] = []
        batches_done = 0
        batches_lock = threading.Lock()
        read_latencies: list[float] = []
        stop_reading = threading.Event()

        def mutate(name: str) -> None:
            nonlocal batches_done
            pool = pools[name]
            for round_index in range(ROUNDS):
                batch = pool[round_index * BATCH_ROWS:(round_index + 1) * BATCH_ROWS]
                third = max(1, len(batch) // 3)
                low = round_index * 7
                # One append, one delete and one update in flight together:
                # the worker drains them into a single coalesced publish.
                requests = [
                    ("append", {"rows": batch}),
                    ("delete", {"positions": list(range(low, low + third))}),
                    (
                        "update",
                        {
                            "positions": list(range(low + third, low + 2 * third)),
                            "rows": batch[:third],
                        },
                    ),
                ]
                threads = []
                outcomes = []

                def fire(kind, payload):
                    status, body = client.request(
                        "POST", f"/streams/{name}/{kind}", payload
                    )
                    outcomes.append((kind, status, body))

                for kind, payload in requests:
                    thread = threading.Thread(target=fire, args=(kind, payload))
                    thread.start()
                    threads.append(thread)
                for thread in threads:
                    thread.join()
                for kind, status, body in outcomes:
                    if status != 200:
                        errors.append(f"{name}/{kind}: {status} {body}")
                with batches_lock:
                    batches_done += len(requests)

        def read(worker: int) -> None:
            index = worker
            while not stop_reading.is_set():
                name = names[index % len(names)]
                path = (
                    f"/streams/{name}/versions/0"
                    if index % 2
                    else f"/streams/{name}/audit"
                )
                start = time.perf_counter()
                status, body = client.request("GET", path)
                elapsed = time.perf_counter() - start
                if status != 200:
                    errors.append(f"read {path}: {status} {body}")
                read_latencies.append(elapsed)
                index += 1

        writers = [threading.Thread(target=mutate, args=(name,)) for name in names]
        readers = [threading.Thread(target=read, args=(worker,)) for worker in range(READERS)]
        wall_start = time.perf_counter()
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join()
        write_wall_seconds = time.perf_counter() - wall_start
        stop_reading.set()
        for thread in readers:
            thread.join()

        assert not errors, errors[:5]
        assert batches_done == STREAMS * ROUNDS * 3

        # -- collect daemon-side numbers -------------------------------------------------
        status, metrics = client.request("GET", "/metrics")
        assert status == 200
        publishes = sum(
            stream["counters"]["publishes"] for stream in metrics["streams"].values()
        )
        failed = sum(
            stream["counters"]["failed_batches"]
            for stream in metrics["streams"].values()
        )
        assert failed == 0
    finally:
        asyncio.run_coroutine_threadsafe(app.stop(), loop).result(120)
        loop.call_soon_threadsafe(loop.stop)
        loop_thread.join(timeout=10)
        loop.close()

    mutations_per_second = batches_done / write_wall_seconds
    ordered = sorted(read_latencies)

    def percentile(q: float) -> float:
        rank = min(len(ordered), max(1, -(-(q * len(ordered)) // 100)))
        return ordered[int(rank) - 1]

    read_p50, read_p99 = percentile(50.0), percentile(99.0)
    coalesce_ratio = batches_done / publishes if publishes else float("nan")
    print(
        f"\nserve: {STREAMS} streams seed={SEED_ROWS} {ROUNDS} rounds x "
        f"{BATCH_ROWS} rows  mutations={batches_done} publishes={publishes} "
        f"(coalesce {coalesce_ratio:.1f}x)  {mutations_per_second:.2f} mutations/s  "
        f"reads={len(ordered)} p50={read_p50 * 1000:.1f}ms p99={read_p99 * 1000:.1f}ms"
    )
    write_bench_json(
        "serve",
        f"streams-{STREAMS}-seed-{SEED_ROWS}-rounds-{ROUNDS}x{BATCH_ROWS}",
        {
            "streams": STREAMS,
            "seed_rows": SEED_ROWS,
            "batch_rows": BATCH_ROWS,
            "rounds": ROUNDS,
            "readers": READERS,
            "mutation_batches": batches_done,
            "publishes": publishes,
            "coalesce_ratio": coalesce_ratio,
            "reads": len(ordered),
            "mutations_per_second": mutations_per_second,
            "read_p50_seconds": read_p50,
            "read_p99_seconds": read_p99,
        },
    )

    # Coalescing means a burst of batches never needs a publish each.
    assert publishes <= batches_done
    assert mutations_per_second >= MIN_MUTATIONS_PER_SECOND, (
        f"the daemon only sustained {mutations_per_second:.2f} mutation "
        f"batches/s (required: {MIN_MUTATIONS_PER_SECOND:g})"
    )
    assert read_p99 <= MAX_READ_P99_SECONDS, (
        f"p99 read latency {read_p99 * 1000:.1f}ms while publications were in "
        f"flight (allowed: {MAX_READ_P99_SECONDS * 1000:g}ms)"
    )
