"""The serving daemon under a mixed multi-stream workload (PR-gated).

Starts a real :class:`repro.serve.ServeApp` on an ephemeral port and drives
it over actual HTTP: several streams are created, writer threads fire
append/delete/update batches at every stream concurrently (so the per-stream
workers get genuine coalescing pressure), and reader threads hammer
historical versions and audit reports the whole time.  Two numbers are
gated:

* **mutations/sec** - accepted mutation batches per second of wall clock
  across all streams (each batch individually acknowledged with its
  published version; coalescing means batches >= publishes);
* **p99 read latency** - the 99th percentile of historical-version and
  audit GETs issued *while publications are in flight*.  Reads are answered
  lock-free from immutable versions, so this must stay flat however busy
  the writers are.

Scale knobs:

* ``REPRO_BENCH_SERVE_STREAMS``    - hosted streams (default 3);
* ``REPRO_BENCH_SERVE_SEED_ROWS``  - seed rows per stream (default 1000);
* ``REPRO_BENCH_SERVE_BATCH_ROWS`` - rows per append batch (default 60);
* ``REPRO_BENCH_SERVE_ROUNDS``     - mutation rounds per stream (default 4;
  each round fires one append, one delete and one update concurrently);
* ``REPRO_BENCH_SERVE_READERS``    - concurrent reader threads (default 4);
* ``REPRO_BENCH_SERVE_COALESCE_MS``- the daemon's coalescing window (default 25);
* ``REPRO_BENCH_SERVE_MIN_MUTATIONS_PER_SECOND`` - throughput gate (default 0.5);
* ``REPRO_BENCH_SERVE_MAX_READ_P99_SECONDS``     - latency gate (default 0.5);
* ``REPRO_JOBS`` - contraction threads inside each stream's prior backend.
  The resolved count is recorded as a ``jobs`` metric and, when it is not 1,
  suffixed onto the section name so runs at different thread counts land in
  distinct sections (CI pins ``REPRO_JOBS=1`` to keep the committed section
  names stable).

The measured numbers land in ``BENCH_serve.json`` (section
``streams-<n>-seed-<rows>-rounds-<k>x<batch>``); CI regenerates the file at
a tiny size and gates it with ``benchmarks/check_regression.py``, whose
``*_per_second`` keys are floors and ``*_seconds`` keys are ceilings.

The second bench in this file is the **saturation** bench: N streams, each
flooded by several concurrent writers against a deliberately tiny bounded
queue, run twice - once with in-process publication (``publish_workers=0``)
and once with a publication process pool.  It measures aggregate accepted
mutations/sec in both modes (``process_speedup`` gates their ratio as a
floor), the 429 rate under overload (``overload_rejected_frac``, gated as a
symmetric band - backpressure must keep firing), and the p99 of reads
issued while publications are in flight (a ceiling).  Saturation knobs::

    REPRO_BENCH_SERVE_SAT_STREAMS        hosted streams (default 4)
    REPRO_BENCH_SERVE_SAT_SEED_ROWS      seed rows per stream (default 240)
    REPRO_BENCH_SERVE_SAT_BATCH_ROWS     rows per append batch (default 40)
    REPRO_BENCH_SERVE_SAT_WRITERS        writer threads per stream (default 3)
    REPRO_BENCH_SERVE_SAT_ROUNDS         batches per writer (default 3)
    REPRO_BENCH_SERVE_SAT_WORKERS        pool size for the process run (default 4)
    REPRO_BENCH_SERVE_SAT_READERS        in-flight reader threads (default 2)
    REPRO_BENCH_SERVE_SAT_MIN_SPEEDUP    in-bench floor on process_speedup
                                         (default 0: record, don't assert -
                                         a single-core machine cannot
                                         honestly clear 1.0; CI sets it)
    REPRO_BENCH_SERVE_SAT_MAX_READ_P99_SECONDS  latency ceiling (default 1.0)
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
import urllib.error
import urllib.request

from conftest import write_bench_json

from repro.data.adult import generate_adult
from repro.knowledge.parallel import default_jobs
from repro.serve import ServeApp

STREAMS = int(os.environ.get("REPRO_BENCH_SERVE_STREAMS", "3"))
SEED_ROWS = int(os.environ.get("REPRO_BENCH_SERVE_SEED_ROWS", "1000"))
BATCH_ROWS = int(os.environ.get("REPRO_BENCH_SERVE_BATCH_ROWS", "60"))
ROUNDS = int(os.environ.get("REPRO_BENCH_SERVE_ROUNDS", "4"))
READERS = int(os.environ.get("REPRO_BENCH_SERVE_READERS", "4"))
COALESCE_MS = float(os.environ.get("REPRO_BENCH_SERVE_COALESCE_MS", "25"))
MIN_MUTATIONS_PER_SECOND = float(
    os.environ.get("REPRO_BENCH_SERVE_MIN_MUTATIONS_PER_SECOND", "0.5")
)
MAX_READ_P99_SECONDS = float(
    os.environ.get("REPRO_BENCH_SERVE_MAX_READ_P99_SECONDS", "0.5")
)

SAT_STREAMS = int(os.environ.get("REPRO_BENCH_SERVE_SAT_STREAMS", "4"))
SAT_SEED_ROWS = int(os.environ.get("REPRO_BENCH_SERVE_SAT_SEED_ROWS", "240"))
SAT_BATCH_ROWS = int(os.environ.get("REPRO_BENCH_SERVE_SAT_BATCH_ROWS", "40"))
SAT_WRITERS = int(os.environ.get("REPRO_BENCH_SERVE_SAT_WRITERS", "3"))
SAT_ROUNDS = int(os.environ.get("REPRO_BENCH_SERVE_SAT_ROUNDS", "3"))
SAT_WORKERS = int(os.environ.get("REPRO_BENCH_SERVE_SAT_WORKERS", "4"))
SAT_READERS = int(os.environ.get("REPRO_BENCH_SERVE_SAT_READERS", "2"))
SAT_MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_SERVE_SAT_MIN_SPEEDUP", "0"))
SAT_MAX_READ_P99_SECONDS = float(
    os.environ.get("REPRO_BENCH_SERVE_SAT_MAX_READ_P99_SECONDS", "1.0")
)
# Contraction threads are a runtime knob (bitwise-identical output), but they
# change what a section *measures*: non-default counts get their own section.
JOBS = default_jobs()
_JOBS_SUFFIX = "" if JOBS == 1 else f"-jobs{JOBS}"

#: A flooded stream's queue: one slot, so concurrent writers *must* see 429s.
SAT_QUEUE_BATCHES = 1
#: Writer backoff on 429.  Deliberately much shorter than the daemon's
#: Retry-After hint (whole seconds, floored at 1): the bench wants maximum
#: sustained pressure on the queue bound, not polite pacing - sleeping the
#: full hint would serialize the writers and measure the sleep, not the
#: daemon.  The hint itself is still asserted present on every 429.
SAT_RETRY_SLEEP = 0.05

#: One stream config for every hosted stream (modest k keeps versions fast).
CONFIG = {"model": "bt", "b": 0.3, "t": 0.25, "k": 2}


def _json_rows(table):
    return [
        {
            name: (value.item() if hasattr(value, "item") else value)
            for name, value in table.row(index).items()
        }
        for index in range(table.n_rows)
    ]


class _Client:
    """Minimal JSON-over-HTTP client against the benched daemon."""

    def __init__(self, port: int):
        self.base = f"http://127.0.0.1:{port}"

    def request(self, method: str, path: str, payload=None, timeout=600):
        body = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            self.base + path, data=body, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def request_full(self, method: str, path: str, payload=None, timeout=600):
        """Like :meth:`request` plus the raw body bytes and response headers."""
        body = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            self.base + path, data=body, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                raw = response.read()
                return response.status, json.loads(raw), raw, dict(response.headers)
        except urllib.error.HTTPError as error:
            raw = error.read()
            return error.code, json.loads(raw), raw, dict(error.headers)


def test_serve_mixed_workload_throughput_and_read_latency(tmp_path):
    app = ServeApp(tmp_path / "serve-data", port=0, coalesce_ms=COALESCE_MS)
    loop = asyncio.new_event_loop()
    loop_thread = threading.Thread(target=loop.run_forever, daemon=True)
    loop_thread.start()
    asyncio.run_coroutine_threadsafe(app.start(), loop).result(60)
    client = _Client(app.port)

    rows_per_stream = SEED_ROWS + ROUNDS * BATCH_ROWS
    names = [f"stream-{index}" for index in range(STREAMS)]
    pools = {}
    try:
        # -- create every stream (not measured: one-off seeding) -----------------------
        for index, name in enumerate(names):
            table = generate_adult(rows_per_stream, seed=100 + index)
            rows = _json_rows(table)
            pools[name] = rows[SEED_ROWS:]
            status, payload = client.request(
                "POST", "/streams", {"name": name, "rows": rows[:SEED_ROWS],
                                     "config": CONFIG},
            )
            assert status == 201, payload

        # -- mixed read/write phase (measured) ------------------------------------------
        errors: list[str] = []
        batches_done = 0
        batches_lock = threading.Lock()
        read_latencies: list[float] = []
        stop_reading = threading.Event()

        def mutate(name: str) -> None:
            nonlocal batches_done
            pool = pools[name]
            for round_index in range(ROUNDS):
                batch = pool[round_index * BATCH_ROWS:(round_index + 1) * BATCH_ROWS]
                third = max(1, len(batch) // 3)
                low = round_index * 7
                # One append, one delete and one update in flight together:
                # the worker drains them into a single coalesced publish.
                requests = [
                    ("append", {"rows": batch}),
                    ("delete", {"positions": list(range(low, low + third))}),
                    (
                        "update",
                        {
                            "positions": list(range(low + third, low + 2 * third)),
                            "rows": batch[:third],
                        },
                    ),
                ]
                threads = []
                outcomes = []

                def fire(kind, payload):
                    status, body = client.request(
                        "POST", f"/streams/{name}/{kind}", payload
                    )
                    outcomes.append((kind, status, body))

                for kind, payload in requests:
                    thread = threading.Thread(target=fire, args=(kind, payload))
                    thread.start()
                    threads.append(thread)
                for thread in threads:
                    thread.join()
                for kind, status, body in outcomes:
                    if status != 200:
                        errors.append(f"{name}/{kind}: {status} {body}")
                with batches_lock:
                    batches_done += len(requests)

        def read(worker: int) -> None:
            index = worker
            while not stop_reading.is_set():
                name = names[index % len(names)]
                path = (
                    f"/streams/{name}/versions/0"
                    if index % 2
                    else f"/streams/{name}/audit"
                )
                start = time.perf_counter()
                status, body = client.request("GET", path)
                elapsed = time.perf_counter() - start
                if status != 200:
                    errors.append(f"read {path}: {status} {body}")
                read_latencies.append(elapsed)
                index += 1

        writers = [threading.Thread(target=mutate, args=(name,)) for name in names]
        readers = [threading.Thread(target=read, args=(worker,)) for worker in range(READERS)]
        wall_start = time.perf_counter()
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join()
        write_wall_seconds = time.perf_counter() - wall_start
        stop_reading.set()
        for thread in readers:
            thread.join()

        assert not errors, errors[:5]
        assert batches_done == STREAMS * ROUNDS * 3

        # -- collect daemon-side numbers -------------------------------------------------
        status, metrics = client.request("GET", "/metrics")
        assert status == 200
        publishes = sum(
            stream["counters"]["publishes"] for stream in metrics["streams"].values()
        )
        failed = sum(
            stream["counters"]["failed_batches"]
            for stream in metrics["streams"].values()
        )
        assert failed == 0
    finally:
        asyncio.run_coroutine_threadsafe(app.stop(), loop).result(120)
        loop.call_soon_threadsafe(loop.stop)
        loop_thread.join(timeout=10)
        loop.close()

    mutations_per_second = batches_done / write_wall_seconds
    ordered = sorted(read_latencies)

    def percentile(q: float) -> float:
        rank = min(len(ordered), max(1, -(-(q * len(ordered)) // 100)))
        return ordered[int(rank) - 1]

    read_p50, read_p99 = percentile(50.0), percentile(99.0)
    coalesce_ratio = batches_done / publishes if publishes else float("nan")
    print(
        f"\nserve: {STREAMS} streams seed={SEED_ROWS} {ROUNDS} rounds x "
        f"{BATCH_ROWS} rows  mutations={batches_done} publishes={publishes} "
        f"(coalesce {coalesce_ratio:.1f}x)  {mutations_per_second:.2f} mutations/s  "
        f"reads={len(ordered)} p50={read_p50 * 1000:.1f}ms p99={read_p99 * 1000:.1f}ms"
    )
    write_bench_json(
        "serve",
        f"streams-{STREAMS}-seed-{SEED_ROWS}-rounds-{ROUNDS}x{BATCH_ROWS}"
        f"{_JOBS_SUFFIX}",
        {
            "streams": STREAMS,
            "seed_rows": SEED_ROWS,
            "batch_rows": BATCH_ROWS,
            "rounds": ROUNDS,
            "readers": READERS,
            "jobs": JOBS,
            "mutation_batches": batches_done,
            "publishes": publishes,
            "coalesce_ratio": coalesce_ratio,
            "reads": len(ordered),
            "mutations_per_second": mutations_per_second,
            "read_p50_seconds": read_p50,
            "read_p99_seconds": read_p99,
        },
    )

    # Coalescing means a burst of batches never needs a publish each.
    assert publishes <= batches_done
    assert mutations_per_second >= MIN_MUTATIONS_PER_SECOND, (
        f"the daemon only sustained {mutations_per_second:.2f} mutation "
        f"batches/s (required: {MIN_MUTATIONS_PER_SECOND:g})"
    )
    assert read_p99 <= MAX_READ_P99_SECONDS, (
        f"p99 read latency {read_p99 * 1000:.1f}ms while publications were in "
        f"flight (allowed: {MAX_READ_P99_SECONDS * 1000:g}ms)"
    )


# -- saturation: process-parallel publication vs threads under overload --------------------


def _run_saturation(data_dir, publish_workers: int) -> dict:
    """One saturation run: flood every stream, return the measured numbers."""
    app = ServeApp(
        data_dir,
        port=0,
        coalesce_ms=COALESCE_MS,
        publish_workers=publish_workers,
        max_queue_batches=SAT_QUEUE_BATCHES,
    )
    loop = asyncio.new_event_loop()
    loop_thread = threading.Thread(target=loop.run_forever, daemon=True)
    loop_thread.start()
    asyncio.run_coroutine_threadsafe(app.start(), loop).result(60)
    client = _Client(app.port)

    names = [f"stream-{index}" for index in range(SAT_STREAMS)]
    batches_per_stream = 1 + SAT_WRITERS * SAT_ROUNDS  # 1 warmup + measured
    rows_per_stream = SAT_SEED_ROWS + batches_per_stream * SAT_BATCH_ROWS
    try:
        # -- seed + warmup (not measured) ------------------------------------------------
        slices: dict[str, list] = {}
        for index, name in enumerate(names):
            rows = _json_rows(generate_adult(rows_per_stream, seed=300 + index))
            status, payload = client.request(
                "POST", "/streams",
                {"name": name, "rows": rows[:SAT_SEED_ROWS], "config": CONFIG},
            )
            assert status == 201, payload
            pool = rows[SAT_SEED_ROWS:]
            slices[name] = [
                pool[i * SAT_BATCH_ROWS:(i + 1) * SAT_BATCH_ROWS]
                for i in range(batches_per_stream)
            ]
        for name in names:
            # The warmup publish absorbs one-off costs that are real but not
            # steady-state (process-mode: worker spawn + first shard resume).
            status, payload = client.request(
                "POST", f"/streams/{name}/append", {"rows": slices[name][0]}
            )
            assert status == 200, payload

        # -- measured flood ---------------------------------------------------------------
        errors: list[str] = []
        accepted = 0
        rejected = 0
        retry_after_missing = 0
        counter_lock = threading.Lock()
        read_latencies: list[float] = []
        version0_bodies: dict[str, set] = {name: set() for name in names}
        stop_reading = threading.Event()

        def write(name: str, writer: int) -> None:
            nonlocal accepted, rejected, retry_after_missing
            for round_index in range(SAT_ROUNDS):
                batch = slices[name][1 + writer * SAT_ROUNDS + round_index]
                while True:
                    status, body, _, headers = client.request_full(
                        "POST", f"/streams/{name}/append", {"rows": batch}
                    )
                    if status == 200:
                        with counter_lock:
                            accepted += 1
                        break
                    if status == 429:
                        with counter_lock:
                            rejected += 1
                            if "Retry-After" not in headers:
                                retry_after_missing += 1
                        time.sleep(SAT_RETRY_SLEEP)
                        continue
                    errors.append(f"{name}/append: {status} {body}")
                    return

        def read(worker: int) -> None:
            index = worker
            while not stop_reading.is_set():
                name = names[index % len(names)]
                start = time.perf_counter()
                status, body, raw, _ = client.request_full(
                    "GET", f"/streams/{name}/versions/0"
                )
                elapsed = time.perf_counter() - start
                if status != 200:
                    errors.append(f"read {name}: {status} {body}")
                else:
                    version0_bodies[name].add(raw)
                read_latencies.append(elapsed)
                index += 1

        writers = [
            threading.Thread(target=write, args=(name, writer))
            for name in names
            for writer in range(SAT_WRITERS)
        ]
        readers = [
            threading.Thread(target=read, args=(worker,))
            for worker in range(SAT_READERS)
        ]
        wall_start = time.perf_counter()
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join()
        wall_seconds = time.perf_counter() - wall_start
        stop_reading.set()
        for thread in readers:
            thread.join()

        assert not errors, errors[:5]
        assert accepted == SAT_STREAMS * SAT_WRITERS * SAT_ROUNDS
        # Overload is the point: the tiny queue must have pushed back, and
        # every rejection must have carried its pacing hint.
        assert rejected > 0, "the saturation flood never hit the queue bound"
        assert retry_after_missing == 0
        # Mid-publication reads return the immutable version byte-for-byte.
        for name in names:
            assert len(version0_bodies[name]) <= 1, (
                f"version 0 of {name} was served with differing bytes"
            )

        status, metrics = client.request("GET", "/metrics")
        assert status == 200
        streams = metrics["streams"]
        assert sum(s["counters"]["rejected_batches"] for s in streams.values()) == rejected
        assert sum(s["counters"]["failed_batches"] for s in streams.values()) == 0
        assert all(s["queue_high_water"] <= SAT_QUEUE_BATCHES for s in streams.values())
        if publish_workers:
            pool_state = metrics["server"]["publication_pool"]
            assert pool_state["workers"] == publish_workers
            assert pool_state["restarts"] == 0
    finally:
        asyncio.run_coroutine_threadsafe(app.stop(), loop).result(120)
        loop.call_soon_threadsafe(loop.stop)
        loop_thread.join(timeout=10)
        loop.close()

    ordered = sorted(read_latencies)
    read_p99 = (
        ordered[min(len(ordered), max(1, -(-(99 * len(ordered)) // 100))) - 1]
        if ordered
        else 0.0
    )
    return {
        "wall_seconds": wall_seconds,
        "accepted": accepted,
        "rejected": rejected,
        "reads": len(ordered),
        "read_p99": read_p99,
    }


def test_serve_saturation_process_pool_vs_threads(tmp_path):
    """Flood N streams twice - thread-mode and process-pool publication."""
    threads_run = _run_saturation(tmp_path / "sat-threads", 0)
    workers_run = _run_saturation(tmp_path / "sat-workers", SAT_WORKERS)

    threads_mps = threads_run["accepted"] / threads_run["wall_seconds"]
    workers_mps = workers_run["accepted"] / workers_run["wall_seconds"]
    process_speedup = workers_mps / threads_mps
    overload_rejected_frac = workers_run["rejected"] / (
        workers_run["rejected"] + workers_run["accepted"]
    )
    print(
        f"\nserve saturation: {SAT_STREAMS} streams x {SAT_WRITERS} writers x "
        f"{SAT_ROUNDS} rounds ({SAT_BATCH_ROWS} rows, queue bound "
        f"{SAT_QUEUE_BATCHES})  threads {threads_mps:.2f} mut/s vs "
        f"{SAT_WORKERS} workers {workers_mps:.2f} mut/s "
        f"(speedup {process_speedup:.2f}x)  429 frac {overload_rejected_frac:.2f}  "
        f"in-flight read p99 {workers_run['read_p99'] * 1000:.1f}ms"
    )
    write_bench_json(
        "serve",
        f"saturation-streams-{SAT_STREAMS}-writers-{SAT_WRITERS}x{SAT_ROUNDS}"
        f"x{SAT_BATCH_ROWS}-workers-{SAT_WORKERS}{_JOBS_SUFFIX}",
        {
            "streams": SAT_STREAMS,
            "seed_rows": SAT_SEED_ROWS,
            "batch_rows": SAT_BATCH_ROWS,
            "writers_per_stream": SAT_WRITERS,
            "jobs": JOBS,
            "rounds": SAT_ROUNDS,
            "publish_workers": SAT_WORKERS,
            "max_queue_batches": SAT_QUEUE_BATCHES,
            "accepted_batches": workers_run["accepted"],
            "rejected_batches": workers_run["rejected"],
            "reads": workers_run["reads"],
            "threads_mutations_per_second": threads_mps,
            "workers_mutations_per_second": workers_mps,
            "process_speedup": process_speedup,
            "overload_rejected_frac": overload_rejected_frac,
            "inflight_read_p99_seconds": workers_run["read_p99"],
        },
    )

    if SAT_MIN_SPEEDUP > 0:
        assert process_speedup >= SAT_MIN_SPEEDUP, (
            f"the publication pool only reached {process_speedup:.2f}x the "
            f"thread-mode throughput (required: {SAT_MIN_SPEEDUP:g}x)"
        )
    assert workers_run["read_p99"] <= SAT_MAX_READ_P99_SECONDS, (
        f"p99 in-flight read latency {workers_run['read_p99'] * 1000:.1f}ms "
        f"(allowed: {SAT_MAX_READ_P99_SECONDS * 1000:g}ms)"
    )
