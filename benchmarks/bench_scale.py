"""Out-of-core publication at scale: peak RSS of the chunked publish+audit path.

The PR-gated contract of the :class:`~repro.data.source.TableSource` layer:
an Adult-scale table published (Mondrian with a spilled value matrix) and
skyline-audited (chunked prior fit, chunked posterior pass) from an ``.npz``
file must stay under ``REPRO_BENCH_SCALE_MAX_RSS_MB`` of peak resident
memory - at the full one-million-row size the ceiling is 8 GB - while
producing *exactly* the release the resident pipeline produces: an identical
partition (the spilled value matrix is bitwise the resident one) and audit
risks within ``1e-12`` of an all-in-RAM reference run.

Every measured run happens in a **fresh subprocess** so that
``getrusage(RUSAGE_SELF).ru_maxrss`` is that run's lifetime peak, untainted
by pytest, by the table generator, or by a previous configuration's
allocations.  This module is its own subprocess entry point: pytest runs the
parent test, ``python bench_scale.py <role> ...`` runs one child role
(``prepare`` writes the npz; ``publish`` is the measured chunked run;
``resident`` is the in-RAM reference).

Scale knobs:

* ``REPRO_BENCH_SCALE_ROWS``         - table size (default 20000; the
  nightly full-scale run uses 1000000);
* ``REPRO_BENCH_SCALE_CHUNK_ROWS``   - chunk size for ingestion, prior fit
  and the posterior pass (default: rows/8 capped to [1024, 65536]);
* ``REPRO_BENCH_SCALE_MAX_RSS_MB``   - peak-RSS ceiling for the chunked run
  (default 8192, the tentpole's 8 GB budget; CI's tiny run pins a far
  tighter ceiling);
* ``REPRO_BENCH_SCALE_RESIDENT_MAX_ROWS`` - largest size at which the
  resident reference run (and the identity assertions against it) still
  executes (default 200000; the 1M run skips the reference - the tiny CI
  sections carry the identity gate).

The measured numbers land in ``BENCH_scale.json`` (section ``rows-<n>``):
``publish_seconds`` / ``audit_seconds`` ride the usual wall-clock ceilings,
``peak_rss_mb`` rides the ``*_peak_rss_mb`` ceiling rule of
``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

SCALE_ROWS = int(os.environ.get("REPRO_BENCH_SCALE_ROWS", "20000"))
CHUNK_ROWS = int(os.environ.get("REPRO_BENCH_SCALE_CHUNK_ROWS", "0")) or min(
    max(SCALE_ROWS // 8, 1024), 65536
)
MAX_RSS_MB = float(os.environ.get("REPRO_BENCH_SCALE_MAX_RSS_MB", "8192"))
RESIDENT_MAX_ROWS = int(
    os.environ.get("REPRO_BENCH_SCALE_RESIDENT_MAX_ROWS", "200000")
)
SEED = 2009
K = 4


def _skyline() -> list[tuple[float, float]]:
    # Late import: the parent runs under pytest (conftest on the path via
    # rootdir), the children re-import this module as a plain script with
    # benchmarks/ as sys.path[0] - both resolve the same conftest.
    from conftest import bench_skyline

    return bench_skyline()


def _peak_rss_mb() -> float:
    """This process's lifetime peak resident set size in MiB."""
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS, KiB on Linux
        return peak / (1024 * 1024)
    return peak / 1024


def _groups_digest(groups) -> str:
    """One hash over the whole partition (group order and membership)."""
    digest = hashlib.sha256()
    for group in groups:
        digest.update(group.astype("int64", copy=False).tobytes())
        digest.update(b"|")
    return digest.hexdigest()


def _audit_rows(report) -> list[dict]:
    return [entry.as_dict() for entry in report.entries]


# -- child roles (fresh subprocesses; last stdout line is a JSON payload) -------------

def _child_prepare(npz_path: str, rows: int) -> dict:
    """Generate the Adult-like table and write the mappable code-column npz."""
    from repro.data.adult import generate_adult
    from repro.data.source import write_npz

    table = generate_adult(rows, seed=SEED)
    write_npz(npz_path, table)
    return {"rows": table.n_rows, "bytes": os.path.getsize(npz_path)}


def _child_publish(npz_path: str, rows: int, chunk_rows: int) -> dict:
    """The measured run: chunked ingestion, spilled Mondrian, chunked audit."""
    from repro.api import Session
    from repro.data.adult import adult_schema
    from repro.data.io import open_table
    from repro.knowledge.backend import resolve_config

    source = open_table(npz_path, adult_schema(), chunk_rows=chunk_rows)
    session = Session(source, config=resolve_config(None, chunk_rows=chunk_rows))
    start = time.perf_counter()
    result = session.anonymize("distinct-l", params={"l": 3}, k=K, spill=True)
    publish_seconds = time.perf_counter() - start
    groups = result.release.groups
    start = time.perf_counter()
    report = session.audit_skyline(groups, _skyline(), chunk_rows=chunk_rows)
    audit_seconds = time.perf_counter() - start
    return {
        "rows": rows,
        "chunk_rows": chunk_rows,
        "groups": len(groups),
        "publish_seconds": publish_seconds,
        "audit_seconds": audit_seconds,
        "peak_rss_mb": _peak_rss_mb(),
        "groups_sha256": _groups_digest(groups),
        "audit": _audit_rows(report),
    }


def _child_resident(npz_path: str, rows: int) -> dict:
    """The in-RAM reference: same data, resident value matrix, unchunked fit."""
    from repro.api import Session
    from repro.data.adult import generate_adult

    table = generate_adult(rows, seed=SEED)  # bitwise the npz's content
    session = Session(table)
    start = time.perf_counter()
    result = session.anonymize("distinct-l", params={"l": 3}, k=K)
    publish_seconds = time.perf_counter() - start
    groups = result.release.groups
    start = time.perf_counter()
    report = session.audit_skyline(groups, _skyline())
    audit_seconds = time.perf_counter() - start
    return {
        "rows": rows,
        "groups": len(groups),
        "publish_seconds": publish_seconds,
        "audit_seconds": audit_seconds,
        "peak_rss_mb": _peak_rss_mb(),
        "groups_sha256": _groups_digest(groups),
        "audit": _audit_rows(report),
    }


_ROLES = {"prepare": _child_prepare, "publish": _child_publish, "resident": _child_resident}


def _run_child(role: str, npz_path, *, chunk_rows: int | None = None) -> dict:
    command = [sys.executable, str(Path(__file__).resolve()), role, str(npz_path), str(SCALE_ROWS)]
    if chunk_rows is not None:
        command.append(str(chunk_rows))
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    completed = subprocess.run(command, capture_output=True, text=True, env=env)
    assert completed.returncode == 0, (
        f"{role} child failed ({completed.returncode}):\n{completed.stderr}"
    )
    return json.loads(completed.stdout.splitlines()[-1])


# -- the parent test ------------------------------------------------------------------

def test_out_of_core_publish_and_audit(tmp_path):
    from conftest import write_bench_json

    npz = tmp_path / f"adult-{SCALE_ROWS}.npz"
    prepared = _run_child("prepare", npz)
    assert prepared["rows"] == SCALE_ROWS

    chunked = _run_child("publish", npz, chunk_rows=CHUNK_ROWS)
    metrics = {
        "rows": SCALE_ROWS,
        "chunk_rows": CHUNK_ROWS,
        "groups": chunked["groups"],
        "npz_mb": prepared["bytes"] / (1024 * 1024),
        "publish_seconds": chunked["publish_seconds"],
        "audit_seconds": chunked["audit_seconds"],
        "peak_rss_mb": chunked["peak_rss_mb"],
    }

    max_risk_difference = None
    if SCALE_ROWS <= RESIDENT_MAX_ROWS:
        resident = _run_child("resident", npz)
        # The spilled value matrix is bitwise the resident one, so the
        # partition - order and membership - must be identical.
        assert chunked["groups_sha256"] == resident["groups_sha256"]
        assert chunked["groups"] == resident["groups"]
        max_risk_difference = max(
            abs(a["worst_case_risk"] - b["worst_case_risk"])
            for a, b in zip(chunked["audit"], resident["audit"])
        )
        assert max_risk_difference <= 1e-12, (
            f"chunked audit drifted {max_risk_difference:.2e} from the resident reference"
        )
        assert [row["vulnerable_tuples"] for row in chunked["audit"]] == [
            row["vulnerable_tuples"] for row in resident["audit"]
        ]
        metrics["resident_peak_rss_mb"] = resident["peak_rss_mb"]
        metrics["max_risk_difference"] = max_risk_difference

    print(
        f"\nscale: rows={SCALE_ROWS} chunk={CHUNK_ROWS} groups={chunked['groups']} "
        f"publish={chunked['publish_seconds']:.3f}s audit={chunked['audit_seconds']:.3f}s "
        f"rss={chunked['peak_rss_mb']:.0f}MB (ceiling {MAX_RSS_MB:.0f}MB)"
        + (
            f" resident-rss={metrics['resident_peak_rss_mb']:.0f}MB "
            f"max-risk-diff={max_risk_difference:.2e}"
            if max_risk_difference is not None
            else ""
        )
    )
    write_bench_json("scale", f"rows-{SCALE_ROWS}", metrics)

    assert chunked["peak_rss_mb"] < MAX_RSS_MB, (
        f"chunked publish+audit peaked at {chunked['peak_rss_mb']:.0f} MB "
        f"(ceiling: {MAX_RSS_MB:.0f} MB)"
    )


if __name__ == "__main__":
    role, npz_argument, rows_argument = sys.argv[1], sys.argv[2], int(sys.argv[3])
    arguments = [npz_argument, rows_argument]
    if len(sys.argv) > 4:
        arguments.append(int(sys.argv[4]))
    print(json.dumps(_ROLES[role](*arguments)))
