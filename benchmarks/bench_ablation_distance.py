"""Ablation A2: distance-measure choice when measuring disclosure risk.

Compares the paper's smoothed-JS measure against raw JS divergence and ordered
EMD on the same (B,t)-private release.
"""

from conftest import record

from repro.experiments.ablation import ablation_distance_measure
from repro.experiments.config import PARA1


def test_ablation_distance_measure(benchmark, adult_table):
    result = benchmark.pedantic(
        lambda: ablation_distance_measure(adult_table, PARA1, adversary_b=0.3),
        rounds=1,
        iterations=1,
    )
    record(result)
    worst = result.series_by_label("worst-case risk")
    mean = result.series_by_label("mean risk")
    for worst_value, mean_value in zip(worst.y, mean.y):
        assert worst_value >= mean_value >= 0.0
    # Smoothing can only reduce the measured JS distance (semantic forgiveness).
    measured = dict(zip(worst.x, worst.y))
    assert measured["smoothed-js (paper)"] <= measured["js"] + 1e-9
