"""Gate benchmark JSON against a committed baseline (fail on slower).

Usage::

    python benchmarks/check_regression.py BASELINE CURRENT [--tolerance 0.30]

Both files are ``BENCH_*.json`` documents produced by
``benchmarks/conftest.write_bench_json``.  For every section present in *both*
files the script compares:

* every ``*_seconds`` metric - the current value may exceed the baseline by at
  most ``tolerance`` (a fraction; 0.30 means +30%) plus ``--absolute-slack``
  seconds (sub-100ms measurements are single-round and noisy; the additive
  slack keeps the ratio gate from firing on scheduler jitter);
* every ``speedup`` / ``*_speedup`` metric - the current value may fall below
  the baseline by at most ``tolerance``.  This gate is dimensionless, so it
  stays meaningful even when baseline and CI hardware differ;
* every ``*_per_second`` throughput metric - gated like speedups (a floor:
  the current value may fall below the baseline by at most ``tolerance``);
* every ``*_p99`` / ``*_p99_*`` tail-latency metric - a ceiling, like
  ``*_seconds`` (most tail latencies already end in ``_seconds``; the
  explicit pattern keeps dimensionless or differently-suffixed p99s gated);
* every ``*_overhead_frac`` instrumentation-cost metric - a ceiling, like
  ``*_seconds``: tracing must stay cheap enough to leave on, so a growing
  overhead fraction is a regression even when absolute latencies hold (the
  additive slack absorbs timer jitter on the tiny CI sizes);
* every ``*_peak_rss_mb`` memory metric - a ceiling, like ``*_seconds``: the
  out-of-core path exists to bound peak resident memory, so a growing RSS is
  a regression even when the wall-clock numbers hold (the additive slack is
  negligible against megabytes, so this gate is effectively the pure ratio);
* every ``*_rejected_frac`` metric - a symmetric *band*: the saturation
  benches are engineered to overload their queues, so a 429 rate that
  *collapses* (backpressure silently stopped firing) fails exactly like one
  that explodes.  The band is ``baseline * (1 +- tolerance)`` widened by
  ``--absolute-slack`` on both sides (fractions are small; the additive
  slack plays the same anti-jitter role it plays for seconds).

A baseline section that *disappears* from the regenerated file is a hard
failure naming every missing section key at once (``write_bench_json`` merges
fresh sections into the committed file, so a vanished section means the bench
was renamed or stopped running - exactly the silent-gate-bypass this script
exists to catch; update the committed baseline deliberately instead).  The
same aggregation applies to metric keys that vanish from a surviving section.
Sections only present in the current file (a new machine size) are reported
but not compared.  Getting *faster* always passes - commit the regenerated
JSON to ratchet the trajectory.

Exit status: 0 when everything is within tolerance, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _load(path: str) -> dict:
    try:
        return json.loads(Path(path).read_text())
    except FileNotFoundError:
        print(f"error: benchmark file {path} does not exist", file=sys.stderr)
        raise SystemExit(1) from None
    except json.JSONDecodeError as error:
        print(f"error: {path} is not valid JSON: {error}", file=sys.stderr)
        raise SystemExit(1) from None


def compare(
    baseline: dict, current: dict, tolerance: float, absolute_slack: float = 0.05
) -> list[str]:
    """Return a list of human-readable regression messages (empty = pass)."""
    failures: list[str] = []
    baseline_sections = baseline.get("sections", {})
    current_sections = current.get("sections", {})
    shared = sorted(set(baseline_sections) & set(current_sections))
    if not shared:
        return [
            "no section is present in both files; nothing was compared "
            f"(baseline: {sorted(baseline_sections)}, current: {sorted(current_sections)})"
        ]
    for section in shared:
        base_metrics = baseline_sections[section]
        cur_metrics = current_sections[section]
        missing_keys: list[str] = []
        for key, base_value in sorted(base_metrics.items()):
            if not isinstance(base_value, (int, float)) or isinstance(base_value, bool):
                continue
            banded = key.endswith("_rejected_frac")
            slower_is_bad = not banded and (
                key.endswith("_seconds")
                or key.endswith("_p99")
                or "_p99_" in key
                or key.endswith("_overhead_frac")
                or key == "peak_rss_mb"
                or key.endswith("_peak_rss_mb")
            )
            lower_is_bad = not banded and (
                key == "speedup"
                or key.endswith("_speedup")
                or key.endswith("_per_second")
            )
            if not (banded or slower_is_bad or lower_is_bad):
                continue
            current_value = cur_metrics.get(key)
            if current_value is None:
                missing_keys.append(key)
                continue
            if banded:
                low = base_value * (1.0 - tolerance) - absolute_slack
                high = base_value * (1.0 + tolerance) + absolute_slack
                ok = low <= current_value <= high
                verdict = "" if ok else "  <-- REGRESSION"
                print(
                    f"  {section}.{key}: baseline {base_value:.4f} -> current "
                    f"{current_value:.4f} (band [{low:.4f}, {high:.4f}]){verdict}"
                )
                if not ok:
                    failures.append(
                        f"{section}: {key} left the band {base_value:.4f} -> "
                        f"{current_value:.4f} (allowed [{low:.4f}, {high:.4f}]; "
                        "a collapsed rejection rate means backpressure stopped "
                        "firing, an inflated one means the bench is drowning)"
                    )
            elif slower_is_bad:
                limit = base_value * (1.0 + tolerance) + absolute_slack
                ok = current_value <= limit or current_value - base_value < 1e-6
                verdict = "" if ok else "  <-- REGRESSION"
                print(
                    f"  {section}.{key}: baseline {base_value:.4f} -> current "
                    f"{current_value:.4f} (limit {limit:.4f}){verdict}"
                )
                if not ok:
                    failures.append(
                        f"{section}: {key} regressed {base_value:.4f} -> "
                        f"{current_value:.4f} (+{100 * (current_value / base_value - 1):.0f}%, "
                        f"tolerance +{100 * tolerance:.0f}%)"
                    )
            else:
                limit = base_value * (1.0 - tolerance)
                ok = current_value >= limit
                verdict = "" if ok else "  <-- REGRESSION"
                print(
                    f"  {section}.{key}: baseline {base_value:.2f} -> current "
                    f"{current_value:.2f} (floor {limit:.2f}){verdict}"
                )
                if not ok:
                    failures.append(
                        f"{section}: {key} dropped {base_value:.2f} -> {current_value:.2f} "
                        f"(-{100 * (1 - current_value / base_value):.0f}%, "
                        f"tolerance -{100 * tolerance:.0f}%)"
                    )
        if missing_keys:
            failures.append(
                f"{section}: gated metrics missing from the current run: "
                + ", ".join(repr(key) for key in missing_keys)
            )
    vanished = sorted(set(baseline_sections) - set(current_sections))
    if vanished:
        failures.append(
            "baseline sections missing from the current run: "
            + ", ".join(repr(section) for section in vanished)
            + " (a regenerated BENCH_*.json keeps every committed section; a "
            "vanished one means its bench was renamed or stopped running - "
            "update the committed baseline deliberately instead)"
        )
    for section in sorted(set(current_sections) - set(baseline_sections)):
        print(f"  {section}: new section (no baseline); skipped")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_*.json baseline")
    parser.add_argument("current", help="freshly regenerated BENCH_*.json")
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed slowdown as a fraction (default 0.30 = +30%%)",
    )
    parser.add_argument(
        "--absolute-slack", type=float, default=0.05,
        help="additive seconds of slack on *_seconds gates (default 0.05)",
    )
    args = parser.parse_args(argv)
    if args.tolerance < 0 or args.absolute_slack < 0:
        parser.error("tolerance and absolute slack must be non-negative")
    baseline = _load(args.baseline)
    current = _load(args.current)
    name = baseline.get("benchmark", Path(args.baseline).stem)
    print(
        f"bench-regression check: {name} "
        f"(tolerance +{100 * args.tolerance:.0f}% + {args.absolute_slack:g}s)"
    )
    failures = compare(baseline, current, args.tolerance, args.absolute_slack)
    if failures:
        print()
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: no benchmark regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
