"""Ablation A4: Mondrian dimension-selection heuristic.

Compares the original widest-dimension heuristic with a round-robin selection
under the (B,t)-privacy requirement, measuring the utility (DM / GCP) of the
resulting releases.
"""

from conftest import record

from repro.experiments.ablation import ablation_mondrian_split
from repro.experiments.config import PARA1


def test_ablation_mondrian_split(benchmark, adult_table):
    result = benchmark.pedantic(
        lambda: ablation_mondrian_split(adult_table, PARA1),
        rounds=1,
        iterations=1,
    )
    record(result)
    dm = result.series_by_label("discernibility metric").y
    gcp = result.series_by_label("global certainty penalty").y
    n = adult_table.n_rows
    assert all(n <= value <= n * n for value in dm)
    assert all(value > 0.0 for value in gcp)
