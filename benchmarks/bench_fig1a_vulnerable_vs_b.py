"""Figure 1(a): vulnerable tuples vs the adversary's bandwidth b'.

Paper shape: the (B,t)-private table has far fewer vulnerable tuples than
distinct l-diversity, probabilistic l-diversity and t-closeness at every b',
and no vulnerable tuples at all for the matched adversary (b' = 0.3).
"""

from conftest import record

from repro.experiments.config import PARA1
from repro.experiments.figures import figure_1a


def test_fig1a_vulnerable_vs_adversary_bandwidth(benchmark, adult_table):
    result = benchmark.pedantic(
        lambda: figure_1a(adult_table, PARA1, b_prime_values=(0.2, 0.3, 0.4, 0.5)),
        rounds=1,
        iterations=1,
    )
    record(result)
    bt = result.series_by_label("(B,t)-privacy")
    ld = result.series_by_label("distinct-l-diversity")
    # Matched adversary breaches nothing under (B,t)-privacy.
    assert bt.y[bt.x.index(0.3)] == 0.0
    # (B,t)-privacy dominates the baselines at every adversary level.
    for position in range(len(bt.x)):
        assert bt.y[position] <= ld.y[position]
