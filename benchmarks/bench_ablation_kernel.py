"""Ablation A1: kernel choice for the (B,t)-privacy prior estimation.

The paper (Section II-C) argues that the choice of kernel function matters far
less than the choice of bandwidth; this benchmark checks that (B,t)-private
tables built with different kernels expose similar worst-case disclosure risk.
"""

from conftest import record

from repro.experiments.ablation import ablation_kernel_choice
from repro.experiments.config import PARA1


def test_ablation_kernel_choice(benchmark, adult_table):
    result = benchmark.pedantic(
        lambda: ablation_kernel_choice(
            adult_table,
            PARA1,
            kernels=("epanechnikov", "uniform", "triangular", "biweight", "gaussian"),
            adversary_b=0.3,
        ),
        rounds=1,
        iterations=1,
    )
    record(result)
    risk_by_kernel = dict(zip(result.series[0].x, result.series_by_label("worst-case risk").y))
    # Kernels with the same (compact, peaked) shape behave almost identically,
    # which is the sense in which the paper says the kernel choice matters little.
    peaked = [risk_by_kernel[name] for name in ("epanechnikov", "triangular", "biweight")]
    assert max(peaked) - min(peaked) < 0.2
    # Changing the *shape* of the weight profile (flat uniform window, unbounded
    # Gaussian tails) changes the modeled adversary and therefore the risk the
    # Epanechnikov-adversary sees - the bandwidth/support is what really matters.
    assert all(0.0 <= value <= 1.0 for value in risk_by_kernel.values())
