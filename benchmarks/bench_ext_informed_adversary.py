"""Extension E1: instance-level knowledge on top of correlational knowledge.

Not a figure from the paper - it probes the Section II-D discussion: the kernel
framework represents knowledge about specific individuals by conditioning the
posterior on the known assignments.  The benchmark measures how the number of
vulnerable tuples grows with the fraction of individuals the adversary already
knows, for an l-diverse release and a (B,t)-private release.
"""

from conftest import record

from repro.anonymize.anonymizer import anonymize
from repro.experiments.config import PARA1
from repro.experiments.results import ExperimentResult
from repro.privacy.informed import InformedAdversary
from repro.privacy.models import BTPrivacy, DistinctLDiversity


def _run(table, parameters):
    bt_release = anonymize(table, BTPrivacy(parameters.b, parameters.t), k=parameters.k).release
    ld_release = anonymize(table, DistinctLDiversity(parameters.l), k=parameters.k).release
    fractions = (0.0, 0.1, 0.2, 0.3)
    result = ExperimentResult(
        experiment_id="Extension E1",
        title=f"Informed adversary (known fraction of individuals), {parameters.describe()}",
        x_label="known fraction",
        y_label="number of vulnerable tuples",
    )
    bt_counts, ld_counts = [], []
    for fraction in fractions:
        adversary = InformedAdversary.with_random_knowledge(table, parameters.b, fraction, seed=5)
        ld_counts.append(float(adversary.attack(ld_release.groups, parameters.t).vulnerable_tuples))
        bt_counts.append(float(adversary.attack(bt_release.groups, parameters.t).vulnerable_tuples))
    result.add_series("distinct-l-diversity", list(fractions), ld_counts)
    result.add_series("(B,t)-privacy", list(fractions), bt_counts)
    return result


def test_ext_informed_adversary(benchmark, adult_table):
    result = benchmark.pedantic(lambda: _run(adult_table, PARA1), rounds=1, iterations=1)
    record(result)
    bt = result.series_by_label("(B,t)-privacy")
    ld = result.series_by_label("distinct-l-diversity")
    # With no instance-level knowledge the (B,t) table is fully protected.
    assert bt.y[0] == 0.0
    # At every knowledge level the (B,t) table remains better than l-diversity.
    for position in range(len(bt.x)):
        assert bt.y[position] <= ld.y[position]
