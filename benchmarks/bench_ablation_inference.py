"""Ablation A3: cost of exact inference vs the Omega-estimate.

The Omega-estimate exists because exact inference is #P-hard; this benchmark
shows the latency gap growing with the group size, which is what makes the
Omega-estimate the only viable check inside Mondrian.
"""

from conftest import BENCH_REPEATS, record

from repro.experiments.ablation import ablation_inference_method


def test_ablation_inference_cost(benchmark, adult_table):
    result = benchmark.pedantic(
        lambda: ablation_inference_method(
            adult_table,
            group_sizes=(3, 5, 8, 10, 12),
            b=0.3,
            repeats=max(5, BENCH_REPEATS // 3),
            seed=11,
        ),
        rounds=1,
        iterations=1,
    )
    record(result)
    exact = result.series_by_label("exact inference").y
    omega = result.series_by_label("omega-estimate").y
    # The Omega-estimate is much cheaper at the largest group size.
    assert omega[-1] < exact[-1]
    # Exact inference cost grows with the group size.
    assert exact[-1] > exact[0]
