"""Figure 1(b): vulnerable tuples vs privacy parameter set (adversary b' = 0.3).

Paper shape: for every parameter set para1..para4 the (B,t)-private table
contains far fewer vulnerable tuples than the three baselines.
"""

from conftest import record

from repro.experiments.config import TABLE_V
from repro.experiments.figures import figure_1b


def test_fig1b_vulnerable_vs_privacy_parameters(benchmark, adult_table):
    result = benchmark.pedantic(
        lambda: figure_1b(adult_table, parameter_sets=TABLE_V, b_prime=0.3),
        rounds=1,
        iterations=1,
    )
    record(result)
    bt = result.series_by_label("(B,t)-privacy")
    for name in ("distinct-l-diversity", "probabilistic-l-diversity", "t-closeness"):
        baseline = result.series_by_label(name)
        for position in range(len(bt.x)):
            assert bt.y[position] <= baseline.y[position]
    # The matched adversary never breaches the (B,t) tables.
    assert all(value == 0.0 for value in bt.y)
