"""Figure 2: accuracy of the Omega-estimate (average distance error vs group size N).

Paper shape: the Omega-estimate stays within 0.1 of exact inference for all
group sizes N in {3, 5, 8, 10, 15} and all bandwidths b in {0.2, 0.3, 0.4, 0.5}.
"""

from conftest import BENCH_REPEATS, record

from repro.experiments.figures import figure_2


def test_fig2_omega_estimate_accuracy(benchmark, adult_table):
    result = benchmark.pedantic(
        lambda: figure_2(
            adult_table,
            group_sizes=(3, 5, 8, 10, 15),
            b_values=(0.2, 0.3, 0.4, 0.5),
            repeats=BENCH_REPEATS,
            seed=42,
        ),
        rounds=1,
        iterations=1,
    )
    record(result)
    for series in result.series:
        assert all(error < 0.1 for error in series.y), series.label
