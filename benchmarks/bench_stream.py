"""Incremental stream publishing vs full republish (the PR-gated stream bench).

The :class:`repro.stream.IncrementalPublisher` contract, measured end to end
on an append-only stream (seed table + fixed-size batches):

* **exact**: after every batch, the incrementally maintained per-tuple audit
  risks must match a from-scratch :class:`SkylineAuditEngine` audit of the
  same release on the concatenated table to ``<= 1e-12`` (the additive
  count-tensor prior updates and the dirty-group audit introduce no drift);
* **fast**: folding a batch in must beat re-running the published pipeline
  (estimate -> Mondrian -> skyline audit via ``repro.api.Pipeline``) from
  scratch by at least ``REPRO_BENCH_STREAM_MIN_SPEEDUP`` (default 2), and
  beat even this repo's cheapest full republish (a fresh publisher's
  ``publish()``, which shares the batched estimator and the frontier
  Mondrian) by ``REPRO_BENCH_STREAM_MIN_REPUBLISH_SPEEDUP`` (default 1.5).

The floors used to be 5x/2x against a pipeline whose priors paid a flat
``O(n^2 d)`` sweep per bandwidth and whose Mondrian ran depth-first; since
the factored contraction backend and the frontier Mondrian became the
defaults everywhere (PR 4), the from-scratch references are themselves
several times faster, so the *relative* incremental advantage shrank while
absolute version latency dropped across the board.

Scale knobs:

* ``REPRO_BENCH_STREAM_ROWS``        - seed rows (default 5000);
* ``REPRO_BENCH_STREAM_BATCH_ROWS``  - rows per append batch (default 500);
* ``REPRO_BENCH_STREAM_BATCHES``     - number of batches (default 5);
* ``REPRO_BENCH_STREAM_MIN_SPEEDUP`` / ``..._MIN_REPUBLISH_SPEEDUP`` - gates.

The measured numbers land in ``BENCH_stream.json`` (section
``seed-<rows>-batches-<k>x<batch>``), which CI regenerates at a tiny size and
compares against the committed baseline with ``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import write_bench_json

from repro.api import Pipeline
from repro.audit import SkylineAuditEngine
from repro.data.adult import generate_adult
from repro.privacy.models import BTPrivacy
from repro.stream import IncrementalPublisher

SEED_ROWS = int(os.environ.get("REPRO_BENCH_STREAM_ROWS", "5000"))
BATCH_ROWS = int(os.environ.get("REPRO_BENCH_STREAM_BATCH_ROWS", "500"))
BATCHES = int(os.environ.get("REPRO_BENCH_STREAM_BATCHES", "5"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_STREAM_MIN_SPEEDUP", "2"))
MIN_REPUBLISH_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_STREAM_MIN_REPUBLISH_SPEEDUP", "1.5")
)

# The model the stream enforces and the paper-style skyline it is audited
# against (four adversaries of increasing knowledge, one shared budget).
MODEL_B, MODEL_T, K = 0.3, 0.2, 4
SKYLINE = ((0.1, 0.2), (0.2, 0.2), (0.3, 0.2), (0.5, 0.2))


def _pipeline_republish(table) -> float:
    """Seconds for a from-scratch estimate -> partition -> audit pipeline run."""
    start = time.perf_counter()
    (
        Pipeline(table)
        .model(BTPrivacy(MODEL_B, MODEL_T))
        .with_k(K)
        .audit_skyline(list(SKYLINE))
        .with_utility(False)
        .run()
    )
    return time.perf_counter() - start


def _publisher_republish(table) -> float:
    """Seconds for this repo's cheapest full republish (fresh publisher)."""
    start = time.perf_counter()
    IncrementalPublisher(
        table, BTPrivacy(MODEL_B, MODEL_T), skyline=list(SKYLINE), k=K
    ).publish()
    return time.perf_counter() - start


def test_incremental_stream_speedup_and_equivalence():
    total = SEED_ROWS + BATCHES * BATCH_ROWS
    full = generate_adult(total, seed=2009)
    seed = full.select(np.arange(SEED_ROWS))

    publisher = IncrementalPublisher(
        seed, BTPrivacy(MODEL_B, MODEL_T), skyline=list(SKYLINE), k=K
    )
    publisher.publish()

    incremental_seconds = 0.0
    pipeline_seconds = 0.0
    republish_seconds = 0.0
    max_risk_difference = 0.0
    for index in range(BATCHES):
        low = SEED_ROWS + index * BATCH_ROWS
        batch = full.select(np.arange(low, low + BATCH_ROWS))
        start = time.perf_counter()
        version = publisher.append(batch)
        incremental_seconds += time.perf_counter() - start

        # Exactness: a fresh full audit of the same release must agree.
        fresh = SkylineAuditEngine(publisher.table, SKYLINE).audit(
            version.release.groups
        )
        max_risk_difference = max(
            max_risk_difference,
            max(
                float(np.abs(entry.attack.risks - reference.attack.risks).max())
                for entry, reference in zip(version.report.entries, fresh.entries)
            ),
        )

        pipeline_seconds += _pipeline_republish(publisher.table)
        republish_seconds += _publisher_republish(publisher.table)

    speedup = pipeline_seconds / incremental_seconds
    republish_speedup = republish_seconds / incremental_seconds
    final = publisher.latest
    print(
        f"\nstream: seed={SEED_ROWS} +{BATCHES}x{BATCH_ROWS} rows "
        f"incremental={incremental_seconds:.3f}s pipeline-republish={pipeline_seconds:.3f}s "
        f"publisher-republish={republish_seconds:.3f}s "
        f"speedup={speedup:.1f}x republish-speedup={republish_speedup:.1f}x "
        f"groups={final.n_groups} max-risk-diff={max_risk_difference:.2e}"
    )
    write_bench_json(
        "stream",
        f"seed-{SEED_ROWS}-batches-{BATCHES}x{BATCH_ROWS}",
        {
            "seed_rows": SEED_ROWS,
            "batch_rows": BATCH_ROWS,
            "batches": BATCHES,
            "adversaries": len(SKYLINE),
            "final_rows": total,
            "final_groups": final.n_groups,
            "incremental_seconds": incremental_seconds,
            "pipeline_republish_seconds": pipeline_seconds,
            "publisher_republish_seconds": republish_seconds,
            "speedup": speedup,
            "republish_speedup": republish_speedup,
            "max_risk_difference": max_risk_difference,
        },
    )

    # Numerically identical to a full re-audit of the published release.
    assert max_risk_difference <= 1e-12
    # Incremental beats re-running the published pipeline from scratch ...
    assert speedup >= MIN_SPEEDUP, (
        f"incremental publishing is only {speedup:.1f}x faster than the "
        f"from-scratch pipeline republish (required: {MIN_SPEEDUP:g}x)"
    )
    # ... and the repo's cheapest full republish path.
    assert republish_speedup >= MIN_REPUBLISH_SPEEDUP, (
        f"incremental publishing is only {republish_speedup:.1f}x faster than a "
        f"fresh publisher republish (required: {MIN_REPUBLISH_SPEEDUP:g}x)"
    )
