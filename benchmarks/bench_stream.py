"""Incremental stream publishing vs full republish (the PR-gated stream bench).

The :class:`repro.stream.IncrementalPublisher` contract, measured end to end
on an append-only stream (seed table + fixed-size batches):

* **exact**: after every batch, the incrementally maintained per-tuple audit
  risks must match a from-scratch :class:`SkylineAuditEngine` audit of the
  same release on the concatenated table to ``<= 1e-12`` (the additive
  count-tensor prior updates and the dirty-group audit introduce no drift);
* **fast**: folding a batch in must beat re-running the published pipeline
  (estimate -> Mondrian -> skyline audit via ``repro.api.Pipeline``) from
  scratch by at least ``REPRO_BENCH_STREAM_MIN_SPEEDUP`` (default 2), and
  beat even this repo's cheapest full republish (a fresh publisher's
  ``publish()``, which shares the batched estimator and the frontier
  Mondrian) by ``REPRO_BENCH_STREAM_MIN_REPUBLISH_SPEEDUP`` (default 1.5).

The floors used to be 5x/2x against a pipeline whose priors paid a flat
``O(n^2 d)`` sweep per bandwidth and whose Mondrian ran depth-first; since
the factored contraction backend and the frontier Mondrian became the
defaults everywhere (PR 4), the from-scratch references are themselves
several times faster, so the *relative* incremental advantage shrank while
absolute version latency dropped across the board.

A second, **mixed-lifecycle** section exercises the full delete/update
engine: each round appends a batch, then retracts a random slice of the
current table and corrects another slice in place, comparing every published
version against a from-scratch audit (<= 1e-12) and the summed incremental
cost against one pipeline republish per mutation
(``REPRO_BENCH_STREAM_MIXED_MIN_SPEEDUP``, default 2).

A third, **tracing-overhead** section runs the same append-only stream twice
- once under an enabled :class:`repro.obs.Tracer` (the publisher default:
every publication records its full span tree) and once under a disabled one
- and gates the relative cost of leaving tracing on
(``tracing_overhead_frac``, best-of-3 each way) at
``REPRO_BENCH_STREAM_MAX_TRACING_OVERHEAD`` (default 0.05): tracing is
designed to be cheap enough to never turn off.

Scale knobs:

* ``REPRO_BENCH_STREAM_ROWS``        - seed rows (default 5000);
* ``REPRO_BENCH_STREAM_BATCH_ROWS``  - rows per append batch (default 500);
* ``REPRO_BENCH_STREAM_BATCHES``     - number of batches (default 5);
* ``REPRO_BENCH_ADVERSARIES``        - skyline adversary count (default 4,
  the paper shape; other counts spread bandwidths over [0.1, 0.5]);
* ``REPRO_BENCH_STREAM_DELETE_FRAC`` / ``..._UPDATE_FRAC`` - mixed-workload
  retraction/correction sizes as fractions of the batch (default 0.2 each);
* ``REPRO_BENCH_STREAM_MIN_SPEEDUP`` / ``..._MIN_REPUBLISH_SPEEDUP`` /
  ``..._MIXED_MIN_SPEEDUP`` / ``..._MAX_TRACING_OVERHEAD`` - gates;
* ``REPRO_JOBS`` - contraction threads inside the prior backend.  The
  resolved count is recorded as a ``jobs`` metric and, when it is not 1,
  suffixed onto the section name so runs at different thread counts land in
  distinct sections (CI pins ``REPRO_JOBS=1`` to keep the committed section
  names stable).

The measured numbers land in ``BENCH_stream.json`` (sections
``seed-<rows>-batches-<k>x<batch>`` and ``mixed-...``), which CI regenerates
at a tiny size and compares against the committed baseline with
``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import bench_skyline, write_bench_json

from repro.api import Pipeline
from repro.audit import SkylineAuditEngine
from repro.data.adult import generate_adult
from repro.knowledge.parallel import default_jobs
from repro.obs.tracing import Tracer
from repro.privacy.models import BTPrivacy
from repro.stream import IncrementalPublisher

SEED_ROWS = int(os.environ.get("REPRO_BENCH_STREAM_ROWS", "5000"))
BATCH_ROWS = int(os.environ.get("REPRO_BENCH_STREAM_BATCH_ROWS", "500"))
BATCHES = int(os.environ.get("REPRO_BENCH_STREAM_BATCHES", "5"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_STREAM_MIN_SPEEDUP", "2"))
MIN_REPUBLISH_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_STREAM_MIN_REPUBLISH_SPEEDUP", "1.5")
)
DELETE_FRAC = float(os.environ.get("REPRO_BENCH_STREAM_DELETE_FRAC", "0.2"))
UPDATE_FRAC = float(os.environ.get("REPRO_BENCH_STREAM_UPDATE_FRAC", "0.2"))
MIXED_MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_STREAM_MIXED_MIN_SPEEDUP", "2"))
MAX_TRACING_OVERHEAD = float(
    os.environ.get("REPRO_BENCH_STREAM_MAX_TRACING_OVERHEAD", "0.05")
)

# The model the stream enforces and the paper-style skyline it is audited
# against (by default four adversaries of increasing knowledge, one shared
# budget; REPRO_BENCH_ADVERSARIES rescales the skyline).
MODEL_B, MODEL_T, K = 0.3, 0.2, 4
SKYLINE = bench_skyline()
_ADVERSARY_SUFFIX = "" if len(SKYLINE) == 4 else f"-adv{len(SKYLINE)}"
# Contraction threads are a runtime knob (bitwise-identical output), but they
# change what a section *measures*: non-default counts get their own section.
JOBS = default_jobs()
_JOBS_SUFFIX = "" if JOBS == 1 else f"-jobs{JOBS}"


def _pipeline_republish(table) -> float:
    """Seconds for a from-scratch estimate -> partition -> audit pipeline run."""
    start = time.perf_counter()
    (
        Pipeline(table)
        .model(BTPrivacy(MODEL_B, MODEL_T))
        .with_k(K)
        .audit_skyline(list(SKYLINE))
        .with_utility(False)
        .run()
    )
    return time.perf_counter() - start


def _publisher_republish(table) -> float:
    """Seconds for this repo's cheapest full republish (fresh publisher)."""
    start = time.perf_counter()
    IncrementalPublisher(
        table, BTPrivacy(MODEL_B, MODEL_T), skyline=list(SKYLINE), k=K
    ).publish()
    return time.perf_counter() - start


def test_incremental_stream_speedup_and_equivalence():
    total = SEED_ROWS + BATCHES * BATCH_ROWS
    full = generate_adult(total, seed=2009)
    seed = full.select(np.arange(SEED_ROWS))

    publisher = IncrementalPublisher(
        seed, BTPrivacy(MODEL_B, MODEL_T), skyline=list(SKYLINE), k=K
    )
    publisher.publish()

    incremental_seconds = 0.0
    pipeline_seconds = 0.0
    republish_seconds = 0.0
    max_risk_difference = 0.0
    for index in range(BATCHES):
        low = SEED_ROWS + index * BATCH_ROWS
        batch = full.select(np.arange(low, low + BATCH_ROWS))
        start = time.perf_counter()
        version = publisher.append(batch)
        incremental_seconds += time.perf_counter() - start

        # Exactness: a fresh full audit of the same release must agree.
        fresh = SkylineAuditEngine(publisher.table, SKYLINE).audit(
            version.release.groups
        )
        max_risk_difference = max(
            max_risk_difference,
            max(
                float(np.abs(entry.attack.risks - reference.attack.risks).max())
                for entry, reference in zip(version.report.entries, fresh.entries)
            ),
        )

        pipeline_seconds += _pipeline_republish(publisher.table)
        republish_seconds += _publisher_republish(publisher.table)

    speedup = pipeline_seconds / incremental_seconds
    republish_speedup = republish_seconds / incremental_seconds
    final = publisher.latest
    print(
        f"\nstream: seed={SEED_ROWS} +{BATCHES}x{BATCH_ROWS} rows "
        f"incremental={incremental_seconds:.3f}s pipeline-republish={pipeline_seconds:.3f}s "
        f"publisher-republish={republish_seconds:.3f}s "
        f"speedup={speedup:.1f}x republish-speedup={republish_speedup:.1f}x "
        f"groups={final.n_groups} max-risk-diff={max_risk_difference:.2e}"
    )
    write_bench_json(
        "stream",
        f"seed-{SEED_ROWS}-batches-{BATCHES}x{BATCH_ROWS}"
        f"{_ADVERSARY_SUFFIX}{_JOBS_SUFFIX}",
        {
            "seed_rows": SEED_ROWS,
            "batch_rows": BATCH_ROWS,
            "batches": BATCHES,
            "adversaries": len(SKYLINE),
            "jobs": JOBS,
            "final_rows": total,
            "final_groups": final.n_groups,
            "incremental_seconds": incremental_seconds,
            "pipeline_republish_seconds": pipeline_seconds,
            "publisher_republish_seconds": republish_seconds,
            "speedup": speedup,
            "republish_speedup": republish_speedup,
            "max_risk_difference": max_risk_difference,
        },
    )

    # Numerically identical to a full re-audit of the published release.
    assert max_risk_difference <= 1e-12
    # Incremental beats re-running the published pipeline from scratch ...
    assert speedup >= MIN_SPEEDUP, (
        f"incremental publishing is only {speedup:.1f}x faster than the "
        f"from-scratch pipeline republish (required: {MIN_SPEEDUP:g}x)"
    )
    # ... and the repo's cheapest full republish path.
    assert republish_speedup >= MIN_REPUBLISH_SPEEDUP, (
        f"incremental publishing is only {republish_speedup:.1f}x faster than a "
        f"fresh publisher republish (required: {MIN_REPUBLISH_SPEEDUP:g}x)"
    )


def test_mixed_lifecycle_stream_speedup_and_equivalence():
    """The full-lifecycle contract: appends, deletions and in-place
    corrections all republish incrementally, each version's maintained audit
    risks match a from-scratch audit to <= 1e-12, and the summed incremental
    cost beats one pipeline republish per mutation by the gated factor."""
    deletes = max(1, round(DELETE_FRAC * BATCH_ROWS))
    updates = max(1, round(UPDATE_FRAC * BATCH_ROWS))
    total = SEED_ROWS + BATCHES * BATCH_ROWS
    full = generate_adult(total, seed=2009)
    seed = full.select(np.arange(SEED_ROWS))
    rng = np.random.default_rng(2009)

    publisher = IncrementalPublisher(
        seed, BTPrivacy(MODEL_B, MODEL_T), skyline=list(SKYLINE), k=K
    )
    publisher.publish()

    incremental_seconds = 0.0
    pipeline_seconds = 0.0
    max_risk_difference = 0.0
    compactions = 0

    def publish_and_verify(operation) -> None:
        nonlocal incremental_seconds, pipeline_seconds, max_risk_difference, compactions
        start = time.perf_counter()
        version = operation()
        incremental_seconds += time.perf_counter() - start
        compactions += int(version.delta.compacted)
        fresh = SkylineAuditEngine(publisher.table, SKYLINE).audit(
            version.release.groups
        )
        max_risk_difference = max(
            max_risk_difference,
            max(
                float(np.abs(entry.attack.risks - reference.attack.risks).max())
                for entry, reference in zip(version.report.entries, fresh.entries)
            ),
        )
        # The from-scratch reference pays one full pipeline per mutation.
        pipeline_seconds += _pipeline_republish(publisher.table)

    for index in range(BATCHES):
        low = SEED_ROWS + index * BATCH_ROWS
        batch = full.select(np.arange(low, low + BATCH_ROWS))
        publish_and_verify(lambda: publisher.append(batch))
        removed = np.sort(
            rng.choice(publisher.table.n_rows, size=deletes, replace=False)
        )
        publish_and_verify(lambda: publisher.delete(removed))
        positions = np.sort(
            rng.choice(publisher.table.n_rows, size=updates, replace=False)
        )
        donors = rng.integers(0, publisher.table.n_rows, size=updates)
        replacements = [publisher.table.row(int(donor)) for donor in donors]
        publish_and_verify(lambda: publisher.update(positions, replacements))

    speedup = pipeline_seconds / incremental_seconds
    final = publisher.latest
    print(
        f"\nmixed stream: seed={SEED_ROWS} +{BATCHES}x({BATCH_ROWS} app, {deletes} del, "
        f"{updates} upd) incremental={incremental_seconds:.3f}s "
        f"pipeline-republish={pipeline_seconds:.3f}s speedup={speedup:.1f}x "
        f"compactions={compactions} rows={final.n_rows} groups={final.n_groups} "
        f"max-risk-diff={max_risk_difference:.2e}"
    )
    write_bench_json(
        "stream",
        f"mixed-{SEED_ROWS}-batches-{BATCHES}x{BATCH_ROWS}"
        f"-del{deletes}-upd{updates}{_ADVERSARY_SUFFIX}{_JOBS_SUFFIX}",
        {
            "seed_rows": SEED_ROWS,
            "batch_rows": BATCH_ROWS,
            "batches": BATCHES,
            "deletes_per_round": deletes,
            "updates_per_round": updates,
            "adversaries": len(SKYLINE),
            "jobs": JOBS,
            "final_rows": final.n_rows,
            "final_groups": final.n_groups,
            "compactions": compactions,
            "incremental_seconds": incremental_seconds,
            "pipeline_republish_seconds": pipeline_seconds,
            "speedup": speedup,
            "max_risk_difference": max_risk_difference,
        },
    )

    # Numerically identical to a full re-audit after every mutation ...
    assert max_risk_difference <= 1e-12
    # ... and faster than republishing the pipeline per mutation.
    assert speedup >= MIXED_MIN_SPEEDUP, (
        f"mixed-lifecycle publishing is only {speedup:.1f}x faster than the "
        f"from-scratch pipeline republish (required: {MIXED_MIN_SPEEDUP:g}x)"
    )


def _stream_run_seconds(full, tracer: Tracer) -> float:
    """Seconds for one seed publish plus every append, under ``tracer``."""
    seed = full.select(np.arange(SEED_ROWS))
    publisher = IncrementalPublisher(
        seed, BTPrivacy(MODEL_B, MODEL_T), skyline=list(SKYLINE), k=K, tracer=tracer
    )
    start = time.perf_counter()
    publisher.publish()
    for index in range(BATCHES):
        low = SEED_ROWS + index * BATCH_ROWS
        publisher.append(full.select(np.arange(low, low + BATCH_ROWS)))
    return time.perf_counter() - start


def test_tracing_overhead_stays_negligible():
    """Leaving span tracing on must cost at most MAX_TRACING_OVERHEAD.

    The publisher traces by default (an enabled tracer records the full span
    tree of every publication); the serving daemon and the CLI rely on that
    being cheap enough to never disable.  Interleaved best-of-3 runs each way
    keep scheduler jitter out of the ratio.
    """
    total = SEED_ROWS + BATCHES * BATCH_ROWS
    full = generate_adult(total, seed=2009)
    enabled_runs: list[float] = []
    disabled_runs: list[float] = []
    for _ in range(3):
        enabled_runs.append(_stream_run_seconds(full, Tracer()))
        disabled_runs.append(_stream_run_seconds(full, Tracer(enabled=False)))
    enabled_seconds = min(enabled_runs)
    disabled_seconds = min(disabled_runs)
    overhead = max(0.0, (enabled_seconds - disabled_seconds) / disabled_seconds)
    print(
        f"\ntracing: seed={SEED_ROWS} +{BATCHES}x{BATCH_ROWS} rows "
        f"enabled={enabled_seconds:.3f}s disabled={disabled_seconds:.3f}s "
        f"overhead={100 * overhead:.1f}%"
    )
    write_bench_json(
        "stream",
        f"tracing-{SEED_ROWS}-batches-{BATCHES}x{BATCH_ROWS}"
        f"{_ADVERSARY_SUFFIX}{_JOBS_SUFFIX}",
        {
            "seed_rows": SEED_ROWS,
            "batch_rows": BATCH_ROWS,
            "batches": BATCHES,
            "adversaries": len(SKYLINE),
            "jobs": JOBS,
            "enabled_seconds": enabled_seconds,
            "disabled_seconds": disabled_seconds,
            "tracing_overhead_frac": overhead,
        },
    )

    assert overhead <= MAX_TRACING_OVERHEAD, (
        f"span tracing costs {100 * overhead:.1f}% on top of a disabled tracer "
        f"(allowed: {100 * MAX_TRACING_OVERHEAD:.0f}%); it must stay cheap "
        "enough to leave on"
    )
