"""Factored prior backend vs the flat reference sweep (the PR-gated bench).

Two contracts of the one shared estimation backend
(:mod:`repro.knowledge.backend`):

* **wide schemas** - a >= 12-attribute schema whose joint rest-combination
  count exceeds ``max_cells`` must use the *hierarchical blocked
  contraction* (not the flat ``O(n^2 d)`` sweep) and stay numerically
  identical to the flat reference (``<= 1e-12``) while being at least
  ``REPRO_BENCH_PRIOR_MIN_SPEEDUP`` times faster;
* **single bandwidths** - the estimation behind every plain
  ``Pipeline.run()`` / ``BTPrivacy.prepare`` call routes through the same
  factored backend, so one-bandwidth priors on the Adult schema must beat
  the flat reference too;
* **parallel contraction** - the same wide blocked estimation run serially
  (``jobs=1``) and threaded (``jobs=REPRO_BENCH_BACKEND_JOBS``) must return
  *bitwise identical* priors, and the threaded run must clear the
  ``REPRO_BENCH_BACKEND_MIN_PAR_SPEEDUP`` floor when one is set (default 0:
  record, don't assert - a single-core machine cannot honestly clear 1.0;
  CI sets it).  The section also times ``share_bandwidths=False`` against
  the shared-cache default (``sharing_speedup``).

Scale knobs:

* ``REPRO_BENCH_PRIOR_ROWS``       - Adult table size (default 5000);
* ``REPRO_BENCH_PRIOR_WIDE_ROWS``  - wide-schema table size (default 4000);
* ``REPRO_BENCH_PRIOR_MIN_SPEEDUP``- speedup floor for the flat-vs-blocked
  gates (default 3);
* ``REPRO_BENCH_BACKEND_JOBS``     - thread count for the parallel section
  (default: all cores; CI pins 4 so the section name stays stable);
* ``REPRO_BENCH_BACKEND_MIN_PAR_SPEEDUP`` - in-bench floor on
  ``parallel_speedup`` (default 0).

The measured numbers land in ``BENCH_prior_backend.json`` (sections
``wide-rows-<n>`` / ``pipeline-rows-<n>`` / ``parallel-rows-<n>-jobs-<j>``),
which CI regenerates at tiny size and compares against the committed
baseline with ``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import write_bench_json

from repro.data.adult import generate_adult
from repro.data.schema import Schema, categorical_qi, numeric_qi, sensitive
from repro.data.table import MicrodataTable
from repro.knowledge.backend import EstimatorConfig, FactoredPriorBackend
from repro.knowledge.prior import BatchedKernelPriorEstimator, kernel_prior

PRIOR_ROWS = int(os.environ.get("REPRO_BENCH_PRIOR_ROWS", "5000"))
WIDE_ROWS = int(os.environ.get("REPRO_BENCH_PRIOR_WIDE_ROWS", "4000"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_PRIOR_MIN_SPEEDUP", "3"))
REPEATS = int(os.environ.get("REPRO_BENCH_PRIOR_REPEATS", "3"))
JOBS = int(os.environ.get("REPRO_BENCH_BACKEND_JOBS", str(os.cpu_count() or 1)))
MIN_PAR_SPEEDUP = float(os.environ.get("REPRO_BENCH_BACKEND_MIN_PAR_SPEEDUP", "0"))


def _best_of(callable_, repeats: int = REPEATS):
    """Best-of-N wall clock (and the last result): tames sub-100ms jitter."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result

WIDE_ATTRIBUTES = 12
# A budget the wide schema's joint rest-combination count overshoots, so the
# fit *must* take the multi-block path (asserted below).  The observed joint
# count approaches WIDE_ROWS on this schema, so (WIDE_ROWS/2)^2 stays under
# it at every scale; the 1M cap keeps full-scale tiles/block joints fast.
WIDE_MAX_CELLS = int(
    os.environ.get("REPRO_BENCH_PRIOR_MAX_CELLS", min(1_000_000, (WIDE_ROWS // 2) ** 2))
)
BANDWIDTHS = (0.2, 0.3)


def _wide_table(n_rows: int, seed: int = 2009) -> MicrodataTable:
    """A >= 12-attribute mixed schema with enough cardinality to defeat dedup."""
    rng = np.random.default_rng(seed)
    attributes = []
    columns: dict = {}
    for i in range(WIDE_ATTRIBUTES):
        name = f"Q{i:02d}"
        if i % 3 == 0:
            attributes.append(numeric_qi(name))
            columns[name] = rng.integers(0, 9, n_rows).astype(float)
        else:
            attributes.append(categorical_qi(name))
            columns[name] = rng.choice([f"v{j}" for j in range(6)], n_rows).tolist()
    attributes.append(sensitive("Disease"))
    columns["Disease"] = rng.choice(
        ["flu", "cancer", "hiv", "cold", "ulcer"], n_rows
    ).tolist()
    return MicrodataTable.from_columns(Schema(attributes), columns)


def test_wide_schema_blocked_vs_flat_speedup():
    table = _wide_table(WIDE_ROWS)

    def run_flat():
        return BatchedKernelPriorEstimator(max_cells=0).fit(table).prior_for_table(BANDWIDTHS)

    def run_blocked():
        estimator = BatchedKernelPriorEstimator(max_cells=WIDE_MAX_CELLS).fit(table)
        return estimator, estimator.prior_for_table(BANDWIDTHS)

    flat_seconds, flat_priors = _best_of(run_flat)
    blocked_seconds, (blocked, blocked_priors) = _best_of(run_blocked)

    assert blocked.mode == "factored"
    assert blocked.backend.n_blocks >= 2, (
        "the wide schema fits a single joint; raise WIDE_ROWS or lower WIDE_MAX_CELLS"
    )
    max_difference = max(
        float(np.abs(a.matrix - b.matrix).max())
        for a, b in zip(blocked_priors, flat_priors)
    )
    speedup = flat_seconds / blocked_seconds

    print(
        f"\nprior backend (wide): rows={WIDE_ROWS} attrs={WIDE_ATTRIBUTES} "
        f"blocks={blocked.backend.n_blocks} flat={flat_seconds:.3f}s "
        f"blocked={blocked_seconds:.3f}s speedup={speedup:.1f}x "
        f"max-diff={max_difference:.2e}"
    )
    write_bench_json(
        "prior_backend",
        f"wide-rows-{WIDE_ROWS}",
        {
            "rows": WIDE_ROWS,
            "attributes": WIDE_ATTRIBUTES,
            "bandwidths": len(BANDWIDTHS),
            "blocks": blocked.backend.n_blocks,
            "flat_seconds": flat_seconds,
            "blocked_seconds": blocked_seconds,
            "speedup": speedup,
            "max_difference": max_difference,
        },
    )
    assert max_difference < 1e-12
    assert speedup >= MIN_SPEEDUP, (
        f"blocked contraction is only {speedup:.1f}x faster than the flat sweep "
        f"(required: {MIN_SPEEDUP:g}x)"
    )


def test_single_bandwidth_pipeline_prior_speedup():
    table = generate_adult(PRIOR_ROWS, seed=2009)

    flat_seconds, flat = _best_of(lambda: kernel_prior(table, 0.3, max_cells=0))
    # What Pipeline.run() / BTPrivacy.prepare() now execute per bandwidth.
    factored_seconds, factored = _best_of(lambda: kernel_prior(table, 0.3))

    max_difference = float(np.abs(factored.matrix - flat.matrix).max())
    speedup = flat_seconds / factored_seconds

    print(
        f"\nprior backend (pipeline): rows={PRIOR_ROWS} flat={flat_seconds:.3f}s "
        f"factored={factored_seconds:.3f}s speedup={speedup:.1f}x "
        f"max-diff={max_difference:.2e}"
    )
    write_bench_json(
        "prior_backend",
        f"pipeline-rows-{PRIOR_ROWS}",
        {
            "rows": PRIOR_ROWS,
            "flat_seconds": flat_seconds,
            "factored_seconds": factored_seconds,
            "speedup": speedup,
            "max_difference": max_difference,
        },
    )
    assert max_difference < 1e-12
    assert speedup >= MIN_SPEEDUP, (
        f"the factored single-bandwidth path is only {speedup:.1f}x faster than "
        f"the flat sweep (required: {MIN_SPEEDUP:g}x)"
    )


def test_parallel_contraction_speedup():
    """Threaded tile contraction vs the serial reference, bitwise identical."""
    table = _wide_table(WIDE_ROWS)

    def backend(jobs: int, share: bool = True) -> FactoredPriorBackend:
        config = EstimatorConfig(
            max_cells=WIDE_MAX_CELLS, jobs=jobs, share_bandwidths=share
        )
        return FactoredPriorBackend(config).fit(table)

    serial = backend(1)
    threaded = backend(JOBS)
    rebuilt = backend(JOBS, share=False)
    assert threaded.n_blocks >= 2, (
        "the wide schema fits a single joint; raise WIDE_ROWS or lower WIDE_MAX_CELLS"
    )
    assert threaded.jobs == JOBS

    serial_seconds, serial_matrices = _best_of(lambda: serial.matrices(BANDWIDTHS))
    parallel_seconds, parallel_matrices = _best_of(lambda: threaded.matrices(BANDWIDTHS))
    noshare_seconds, noshare_matrices = _best_of(lambda: rebuilt.matrices(BANDWIDTHS))

    # The whole point of the threaded path: not "close", *identical*.
    for ours, reference in zip(parallel_matrices, serial_matrices):
        assert np.array_equal(ours, reference)
    for ours, reference in zip(noshare_matrices, serial_matrices):
        assert np.array_equal(ours, reference)

    parallel_speedup = serial_seconds / parallel_seconds
    sharing_speedup = noshare_seconds / parallel_seconds

    print(
        f"\nprior backend (parallel): rows={WIDE_ROWS} jobs={JOBS} "
        f"blocks={threaded.n_blocks} serial={serial_seconds:.3f}s "
        f"parallel={parallel_seconds:.3f}s speedup={parallel_speedup:.2f}x "
        f"sharing={sharing_speedup:.2f}x"
    )
    write_bench_json(
        "prior_backend",
        f"parallel-rows-{WIDE_ROWS}-jobs-{JOBS}",
        {
            "rows": WIDE_ROWS,
            "attributes": WIDE_ATTRIBUTES,
            "bandwidths": len(BANDWIDTHS),
            "jobs": JOBS,
            "blocks": threaded.n_blocks,
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "parallel_speedup": parallel_speedup,
            "noshare_seconds": noshare_seconds,
            "sharing_speedup": sharing_speedup,
        },
    )
    if MIN_PAR_SPEEDUP > 0:
        assert parallel_speedup >= MIN_PAR_SPEEDUP, (
            f"{JOBS} contraction threads only reached {parallel_speedup:.2f}x the "
            f"serial path (required: {MIN_PAR_SPEEDUP:g}x)"
        )
