"""Quickstart: the pipeline API - anonymize, audit and report in one fluent run.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro import MODELS, Session, expand_grid, generate_adult
from repro.utility import QueryWorkloadGenerator, average_relative_error


def main() -> None:
    # 1. A microdata table: 3 000 census-like records, Occupation is sensitive.
    table = generate_adult(3_000, seed=1)
    print(f"table: {table.n_rows} rows, QI = {', '.join(table.quasi_identifier_names)}, "
          f"sensitive = {table.sensitive_name}")
    print(f"registered privacy models: {', '.join(MODELS.names())}")

    # 2. A session caches expensive preparation (kernel prior estimation, the
    #    dominant cost) so every pipeline and sweep below shares it.  The
    #    estimation threads across all cores by default; Session(jobs=N) (or
    #    --jobs N on any CLI subcommand, or REPRO_JOBS) pins the thread count
    #    and jobs=1 is the serial reference - results are bitwise identical
    #    at any setting.
    session = Session(table)

    # 3. Publish under (B,t)-privacy and audit in one fluent pipeline: the
    #    adversary profile is bandwidth b = 0.3, no individual's sensitive
    #    attribute may be disclosed by more than t = 0.2, and the audit
    #    replays the Section V-A background-knowledge attack with b' = 0.3.
    bundle = (
        session.pipeline()
        .model("bt", b=0.3, t=0.2)
        .with_k(4)
        .algorithm("mondrian")
        .audit(b_prime=0.3)
        .run()
    )
    release = bundle.release
    anonymization_seconds = (
        bundle.timings["prepare_seconds"] + bundle.timings["partition_seconds"]
    )
    print(f"\n(B,t)-private release: {release.n_groups} groups, "
          f"avg size {release.average_group_size():.1f}, "
          f"prepared+partitioned in {anonymization_seconds:.2f}s")
    print(f"audit Adv(b'=0.3): {bundle.attack.vulnerable_tuples} vulnerable tuples, "
          f"worst-case knowledge gain {bundle.attack.worst_case_risk:.3f} (budget 0.2)")
    print(f"utility: DM = {bundle.utility['discernibility_metric']:.0f}, "
          f"GCP = {bundle.utility['global_certainty_penalty']:.0f}")

    # 3b. The publisher does not know the adversary's knowledge level, so
    #     audit the same release against a whole skyline of adversaries in one
    #     batched pass (Definition 2); the session reuses every cached prior
    #     and estimates the missing bandwidths together.
    skyline_report = session.audit_skyline(
        release.groups, [(0.1, 0.25), (0.3, 0.2), (0.5, 0.2)]
    )
    print(f"\nskyline audit ({'satisfied' if skyline_report.satisfied else 'breached'}):")
    for entry in skyline_report.entries:
        print(f"  Adv{entry.adversary.describe()}: "
              f"worst-case gain {entry.attack.worst_case_risk:.3f} "
              f"(margin {entry.margin:+.3f})")

    # 4. Compare against the classic baselines with a parameter sweep.  The
    #    grid spans heterogeneous models - each picks the parameters it
    #    understands - and the session cache means the kernel priors are
    #    estimated exactly once across everything in this script.
    outcome = session.sweep(
        expand_grid(
            model=["bt", "distinct-l", "probabilistic-l", "t-closeness"],
            b=0.3, t=0.2, l=4, k=4,
            audit={"b_prime": 0.3, "threshold": 0.2},
        )
    )
    print("\nmodel comparison sweep:")
    print(outcome.render())
    print(f"kernel prior estimations: {session.stats.prior_estimations} "
          f"(cache hits: {session.stats.prior_cache_hits})")

    # 5. The release still answers aggregate queries well.
    queries = QueryWorkloadGenerator(table, query_dimension=3, selectivity=0.1, seed=7).generate(200)
    error = average_relative_error(release, queries)
    print(f"\naggregate query error of the (B,t) release: {error:.1f}%")

    # 6. Peek at the published (generalized) form of the first few tuples.
    print("\nfirst three published rows:")
    for row in release.generalized_rows()[:3]:
        print("  ", row)

    # 7. Changing data?  session.stream(...) turns the same configuration
    #    into an incremental publisher covering the full stream lifecycle:
    #    appended batches, GDPR-style deletions and in-place corrections are
    #    all folded in with exact count-tensor deltas, dirty-leaf re-splits
    #    and delta skyline audits instead of re-running the whole pipeline
    #    (see examples/streaming_publisher.py, which also persists the
    #    stream to a disk-backed ReleaseStore and resumes it).
    publisher = session.stream("bt", params={"b": 0.3, "t": 0.2}, k=4)
    version = publisher.append(table.sample(200, rng=np.random.default_rng(2)).rows())
    print(f"\nstreaming: v{version.version} folded {version.delta.appended_rows} "
          f"appended rows in {version.delta.timings['total_seconds']:.2f}s, "
          f"reusing {version.delta.reused_groups} of {publisher.store[0].n_groups} "
          f"seed groups verbatim")
    version = publisher.delete(np.arange(0, 40))       # retract 40 rows
    print(f"streaming: v{version.version} retracted {version.delta.deleted_rows} "
          f"rows, {version.delta.rebuilt_regions} region(s) merged/rebuilt")
    donors = publisher.table.sample(10, rng=np.random.default_rng(3)).rows()
    version = publisher.update(np.arange(10), donors)  # correct 10 rows in place
    print(f"streaming: v{version.version} corrected {version.delta.updated_rows} "
          f"rows, audit recomputed {version.delta.audit_recomputed_groups or 'no'} "
          f"groups")

    # 7b. Too big for RAM?  The same pipeline runs out-of-core: export the
    #     table once, then open it as a chunked TableSource - a .csv streams
    #     in two passes, a .npz is memory-mapped so the code columns are
    #     views into the file.  A Session over a source fits the kernel
    #     priors chunk by chunk through exact append deltas (bitwise the
    #     resident fit) and `spill=True` keeps Mondrian's value matrix in a
    #     temp-file memmap.  The CLI spelling is
    #     `repro anonymize --input census.csv --chunk-rows 50000 ...`
    #     (every table-consuming subcommand takes --input/--chunk-rows);
    #     benchmarks/bench_scale.py publishes and audits one million rows
    #     this way under 8 GB peak RSS.
    import tempfile as _tempfile

    from repro.data.io import open_table, write_csv
    from repro.knowledge.backend import EstimatorConfig

    csv_path = Path(_tempfile.mkdtemp(prefix="repro-quickstart-")) / "census.csv"
    write_csv(table, csv_path)
    source = open_table(csv_path, chunk_rows=1_000)
    chunked = Session(source, config=EstimatorConfig(chunk_rows=1_000))
    chunked_release = chunked.anonymize("bt", params={"b": 0.3, "t": 0.2},
                                        k=4, spill=True).release
    assert chunked_release.n_groups == release.n_groups
    print(f"\nout-of-core: {csv_path.name} streamed in 1k-row chunks -> "
          f"{chunked_release.n_groups} groups, identical to the in-RAM release")

    # 8. Serving many tenants?  `repro serve --data-dir DIR` hosts any number
    #    of named streams as a long-running HTTP daemon: writes to a stream
    #    are coalesced into single published versions, reads (history,
    #    lineage, audit reports) are answered lock-free from immutable
    #    versions, and a restart resumes every stream from its disk shard.
    #    The same app runs in-process:
    import asyncio
    import json as _json
    import tempfile
    import threading
    import urllib.request

    from repro.serve import ServeApp

    app = ServeApp(tempfile.mkdtemp(prefix="repro-quickstart-"), port=0)
    loop = asyncio.new_event_loop()
    threading.Thread(target=loop.run_forever, daemon=True).start()
    asyncio.run_coroutine_threadsafe(app.start(), loop).result(30)
    seed_rows = [
        {name: (value.item() if hasattr(value, "item") else value)
         for name, value in table.row(index).items()}
        for index in range(400)
    ]
    request = urllib.request.Request(
        f"http://127.0.0.1:{app.port}/streams", method="POST",
        data=_json.dumps({"name": "census", "rows": seed_rows,
                          "config": {"model": "bt", "b": 0.3, "t": 0.25}}).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        stream = _json.loads(response.read())["stream"]
    print(f"\nserving: POST /streams published version 0 of {stream['name']!r} "
          f"({stream['groups']} groups); see examples/serve_client.py for the "
          f"full coalesce/read/restart lifecycle")

    # 9. Observability: the daemon is born instrumented.  `repro serve
    #    --log-format json` emits one JSON log record per line (each request
    #    carries a trace id, echoed back as X-Repro-Trace-Id), a Prometheus
    #    scrape target lives at /metrics?format=prometheus, and every
    #    freshly published version exposes its span-derived stage breakdown
    #    (prior/partition/audit) under GET /streams/<name>/versions/<v>.
    with urllib.request.urlopen(
        f"http://127.0.0.1:{app.port}/metrics?format=prometheus", timeout=120
    ) as response:
        families = sum(
            line.startswith(b"# TYPE") for line in response.read().splitlines()
        )
    print(f"observability: /metrics?format=prometheus exposes {families} "
          f"metric families; repro anonymize/audit/stream --trace-out PATH "
          f"dumps the same span tree for one-shot runs")
    asyncio.run_coroutine_threadsafe(app.stop(), loop).result(60)
    loop.call_soon_threadsafe(loop.stop)


if __name__ == "__main__":
    main()
