"""Quickstart: anonymize a microdata table with (B,t)-privacy and audit the result.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import (
    BackgroundKnowledgeAttack,
    BTPrivacy,
    DistinctLDiversity,
    anonymize,
    generate_adult,
)
from repro.utility import QueryWorkloadGenerator, average_relative_error, utility_report


def main() -> None:
    # 1. A microdata table: 3 000 census-like records, Occupation is sensitive.
    table = generate_adult(3_000, seed=1)
    print(f"table: {table.n_rows} rows, QI = {', '.join(table.quasi_identifier_names)}, "
          f"sensitive = {table.sensitive_name}")

    # 2. Publish it under (B,t)-privacy: the adversary profile is bandwidth b = 0.3,
    #    and no individual's sensitive attribute may be disclosed by more than t = 0.2.
    result = anonymize(table, BTPrivacy(b=0.3, t=0.2), k=4)
    release = result.release
    print(f"(B,t)-private release: {release.n_groups} groups, "
          f"avg size {release.average_group_size():.1f}, "
          f"built in {result.total_seconds:.2f}s "
          f"({result.prepare_seconds:.2f}s background-knowledge estimation)")

    # 3. Audit: replay the probabilistic background-knowledge attack of Section V-A.
    attack = BackgroundKnowledgeAttack(table, b_prime=0.3)
    outcome = attack.attack(release.groups, threshold=0.2)
    print(f"attack Adv(b'=0.3): {outcome.vulnerable_tuples} vulnerable tuples, "
          f"worst-case knowledge gain {outcome.worst_case_risk:.3f} (budget 0.2)")

    # 4. Compare with a classic l-diversity release.
    baseline = anonymize(table, DistinctLDiversity(4), k=4).release
    baseline_outcome = attack.attack(baseline.groups, threshold=0.2)
    print(f"distinct 4-diversity baseline: {baseline_outcome.vulnerable_tuples} vulnerable tuples, "
          f"worst-case gain {baseline_outcome.worst_case_risk:.3f}")

    # 5. The release is still useful: general utility metrics and query accuracy.
    report = utility_report(release)
    queries = QueryWorkloadGenerator(table, query_dimension=3, selectivity=0.1, seed=7).generate(200)
    error = average_relative_error(release, queries)
    print(f"utility: DM = {report['discernibility_metric']:.0f}, "
          f"GCP = {report['global_certainty_penalty']:.0f}, "
          f"aggregate query error = {error:.1f}%")

    # 6. Peek at the published (generalized) form of the first few tuples.
    print("\nfirst three published rows:")
    for row in release.generalized_rows()[:3]:
        print("  ", row)


if __name__ == "__main__":
    main()
