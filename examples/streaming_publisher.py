"""Streaming publication: append -> incremental republish -> delta audit.

A production publisher receives rows continuously.  Re-running the whole
estimate -> partition -> audit pipeline per batch wastes everything the
previous run computed; the `repro.stream` engine instead folds each batch
into the factored prior state, routes the new rows down the recorded
Mondrian split tree, re-splits only the groups that actually changed, and
re-audits the skyline touching only dirty groups - while staying numerically
identical to a from-scratch audit of the published release.

Run with:  python examples/streaming_publisher.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro import Session, SkylineAuditEngine, generate_adult

SEED_ROWS = 4_000
BATCH_ROWS = 400
BATCHES = 4
SKYLINE = [(0.1, 0.3), (0.3, 0.25), (0.5, 0.25)]


def main() -> None:
    # One draw for the whole stream, so batches share the seed's marginals.
    everything = generate_adult(SEED_ROWS + BATCHES * BATCH_ROWS, seed=42)
    seed_table = everything.select(np.arange(SEED_ROWS))

    # 1. Seed release: skyline (B,t)-privacy (Definition 2) with a k-anonymity
    #    guard - the release is *enforced* against every skyline adversary, so
    #    the per-version audits below should stay satisfied.  Session.stream
    #    publishes version 0 immediately; the audit skyline defaults to the
    #    model's own (B_i, t_i) points.
    session = Session(seed_table)
    publisher = session.stream("skyline-bt", params={"points": SKYLINE}, k=4)
    v0 = publisher.latest
    print(f"stream: {publisher.describe()}")
    print(f"v0: {v0.n_rows} rows -> {v0.n_groups} groups "
          f"({v0.delta.timings['total_seconds']:.2f}s full publish)")

    # 2. Append batches.  Each append is an *incremental* republish: watch how
    #    many groups are reused verbatim and how little is recomputed.
    for index in range(BATCHES):
        low = SEED_ROWS + index * BATCH_ROWS
        batch = everything.select(np.arange(low, low + BATCH_ROWS))
        version = publisher.append(batch)
        delta = version.delta
        print(f"\nv{version.version}: +{delta.appended_rows} rows -> "
              f"{version.n_groups} groups in {delta.timings['total_seconds']:.3f}s")
        print(f"  reused {delta.reused_groups} groups verbatim, rechecked "
              f"{delta.rechecked_leaves}, refined {delta.refined_leaves}, "
              f"rebuilt {delta.rebuilt_regions} regions")
        print(f"  delta audit recomputed {delta.audit_recomputed_groups} "
              f"of {version.n_groups} groups per adversary")

        # 3. The audit deltas show how each adversary's risk drifts as data
        #    arrives - the finite-sample face of the paper's risk continuity.
        for row in publisher.store.report_delta(version.version):
            print(f"  {row['adversary']}: risk {row['worst_case_risk']:.4f} "
                  f"({row['worst_case_risk_change']:+.2e}), "
                  f"margin {row['margin']:+.3f} "
                  f"[{'ok' if row['satisfied'] else 'BREACH'}]")

    # 4. Trust but verify: the incrementally maintained risks are numerically
    #    identical to a from-scratch audit of the same release.
    final = publisher.latest
    fresh = SkylineAuditEngine(publisher.table, SKYLINE).audit(final.release.groups)
    drift = max(
        float(np.abs(entry.attack.risks - reference.attack.risks).max())
        for entry, reference in zip(final.report.entries, fresh.entries)
    )
    print(f"\nincremental vs from-scratch audit: max risk difference {drift:.2e}")


if __name__ == "__main__":
    main()
