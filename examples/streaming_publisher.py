"""Streaming publication: the full lifecycle, persisted and resumable.

A production publisher receives rows continuously - and retracts rows
(GDPR-style erasure) and corrects rows (late-arriving fixes) just as
continuously.  Re-running the whole estimate -> partition -> audit pipeline
per mutation wastes everything the previous run computed; the `repro.stream`
engine instead folds each batch into the factored prior state as *exact*
count-tensor deltas (additive for appends, negative for deletions, paired
for corrections), routes moved rows down the recorded Mondrian split tree,
re-splits only the groups that actually changed, merges regions up when a
shrunken group falls below the requirement, and re-audits the skyline
touching only dirty groups - while staying numerically identical to a
from-scratch audit of the published release.

With ``store_dir=...`` every version also lands in a disk-backed
``ReleaseStore`` (JSON-lines lineage + npz releases + restart state), so the
stream survives a process restart: ``IncrementalPublisher.resume`` picks it
up mid-lineage and continues with versions identical to an uninterrupted
publisher.

Run with:  python examples/streaming_publisher.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro import Session, SkylineAuditEngine, generate_adult
from repro.data.adult import adult_schema
from repro.privacy.models import SkylineBTPrivacy
from repro.stream import IncrementalPublisher

SEED_ROWS = 4_000
BATCH_ROWS = 400
BATCHES = 3
SKYLINE = [(0.1, 0.3), (0.3, 0.25), (0.5, 0.25)]
DELETES, UPDATES = 80, 60


def describe(version) -> None:
    delta = version.delta
    changes = " ".join(
        part
        for part in (
            f"+{delta.appended_rows}" if delta.appended_rows else "",
            f"-{delta.deleted_rows}" if delta.deleted_rows else "",
            f"~{delta.updated_rows}" if delta.updated_rows else "",
        )
        if part
    )
    tag = " [compacted]" if delta.compacted else (" [rebuild]" if delta.rebuild else "")
    print(f"\nv{version.version}: {changes or 'seed'} rows -> "
          f"{version.n_groups} groups in {delta.timings['total_seconds']:.3f}s{tag}")
    print(f"  reused {delta.reused_groups} groups verbatim, rechecked "
          f"{delta.rechecked_leaves}, refined {delta.refined_leaves}, "
          f"rebuilt {delta.rebuilt_regions} regions; delta audit recomputed "
          f"{delta.audit_recomputed_groups} of {version.n_groups} groups")


def main() -> None:
    # One draw for the whole stream, so batches share the seed's marginals.
    everything = generate_adult(SEED_ROWS + BATCHES * BATCH_ROWS, seed=42)
    seed_table = everything.select(np.arange(SEED_ROWS))
    store_dir = Path(tempfile.mkdtemp()) / "releases"
    rng = np.random.default_rng(7)

    # 1. Seed release: skyline (B,t)-privacy (Definition 2) with a k-anonymity
    #    guard, persisted to a disk-backed ReleaseStore from the first version.
    session = Session(seed_table)
    publisher = session.stream(
        "skyline-bt", params={"points": SKYLINE}, k=4, store_dir=str(store_dir)
    )
    v0 = publisher.latest
    print(f"stream: {publisher.describe()}")
    print(f"v0: {v0.n_rows} rows -> {v0.n_groups} groups "
          f"({v0.delta.timings['total_seconds']:.2f}s full publish), "
          f"persisted to {store_dir}")

    # 2. The full lifecycle, incrementally: append a batch, erase a random
    #    slice (exact negative count-tensor deltas; regions that fall below
    #    k merge up), correct another slice in place (paired deltas; a
    #    corrected QI value re-routes across split boundaries).
    for index in range(BATCHES - 1):
        low = SEED_ROWS + index * BATCH_ROWS
        describe(publisher.append(everything.select(np.arange(low, low + BATCH_ROWS))))
        erased = np.sort(rng.choice(publisher.table.n_rows, size=DELETES, replace=False))
        describe(publisher.delete(erased))
        positions = np.sort(rng.choice(publisher.table.n_rows, size=UPDATES, replace=False))
        donors = rng.integers(0, publisher.table.n_rows, size=UPDATES)
        corrections = [publisher.table.row(int(d)) for d in donors]
        describe(publisher.update(positions, corrections))

    # 3. The audit deltas show how each adversary's risk drifts as the data
    #    changes - the finite-sample face of the paper's risk continuity.
    latest = publisher.latest
    for row in publisher.store.report_delta(latest.version):
        print(f"  {row['adversary']}: risk {row['worst_case_risk']:.4f} "
              f"({row['worst_case_risk_change']:+.2e}), margin {row['margin']:+.3f} "
              f"[{'ok' if row['satisfied'] else 'BREACH'}]")

    # 4. Process restart: resume the stream from the store directory.  The
    #    resumed publisher continues the lineage (and can serve any
    #    historical version) with releases identical to an uninterrupted run.
    del publisher
    publisher = IncrementalPublisher.resume(
        store_dir, schema=adult_schema(), model=SkylineBTPrivacy(SKYLINE)
    )
    print(f"\nresumed from {store_dir} at v{publisher.latest.version} "
          f"({len(publisher.store)} versions on disk; "
          f"v1 had {publisher.store[1].n_groups} groups)")
    low = SEED_ROWS + (BATCHES - 1) * BATCH_ROWS
    describe(publisher.append(everything.select(np.arange(low, low + BATCH_ROWS))))

    # 5. Trust but verify: the incrementally maintained risks are numerically
    #    identical to a from-scratch audit of the final release.
    final = publisher.latest
    fresh = SkylineAuditEngine(publisher.table, SKYLINE).audit(final.release.groups)
    drift = max(
        float(np.abs(entry.attack.risks - reference.attack.risks).max())
        for entry, reference in zip(final.report.entries, fresh.entries)
    )
    print(f"\nincremental vs from-scratch audit: max risk difference {drift:.2e}")


if __name__ == "__main__":
    main()
