"""The paper's motivating scenario (Tables I-III): how correlational background
knowledge breaks l-diversity, and how the numbers of Section III arise.

A hospital publishes the 9-patient table of Table I(a) as the 3-diverse
generalized table of Table I(b).  An adversary who knows that emphysema is far
more common among older men can re-identify Bob's disease with high confidence;
an adversary with the prior-belief table of Table II(b) raises her belief that
t3 has HIV from 0.3 to 0.8.

Run with:  python examples/hospital_disclosure.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro import kernel_prior, uniform_prior
from repro.anonymize import AnonymizedRelease
from repro.data.examples import (
    table_i_groups,
    table_i_patients,
    table_ii_prior,
    table_ii_sensitive_counts,
    table_iii_prior,
)
from repro.inference import exact_posterior, omega_posterior, posterior_for_groups


def motivating_example() -> None:
    """Reproduce the Section I story about Bob and emphysema."""
    table = table_i_patients()
    groups = table_i_groups()
    release = AnonymizedRelease(table, groups, method="Table I(b)")
    print("Published (generalized) table T*:")
    for row in release.generalized_rows():
        print("  ", row)

    emphysema = table.sensitive_domain().code_of("Emphysema")
    codes = table.sensitive_codes()

    ignorant = uniform_prior(table)
    informed = kernel_prior(table, 0.2)  # correlational knowledge mined from the data

    ignorant_posterior = posterior_for_groups(ignorant.matrix, codes, groups, method="exact")
    informed_posterior = posterior_for_groups(informed.matrix, codes, groups, method="exact")

    print("\nBob is the 69-year-old male (tuple 1, first group).")
    print(f"  without background knowledge:  P(Emphysema | Bob) = "
          f"{ignorant_posterior[0, emphysema]:.3f}  (the 1/3 the publisher hoped for)")
    print(f"  with correlational knowledge:  P(Emphysema | Bob) = "
          f"{informed_posterior[0, emphysema]:.3f}  (the adversary is nearly certain)")


def table_ii_example() -> None:
    """Reproduce the Section III-B computation: belief in HIV rises from 0.3 to 0.8."""
    prior = table_ii_prior()
    counts = table_ii_sensitive_counts()
    exact = exact_posterior(prior, counts)
    omega = omega_posterior(prior, counts)
    print("\nTable II example ({t1, t2, t3} hold {none, none, HIV}):")
    print(f"  adversary's prior P(HIV | t3)          = {prior[2, 0]:.2f}")
    print(f"  exact posterior P*(HIV | t3)           = {exact[2, 0]:.3f}   (paper: 0.8)")
    print(f"  Omega-estimate posterior               = {omega[2, 0]:.3f}")


def table_iii_example() -> None:
    """Reproduce the Section III-D inexactness example of the Omega-estimate."""
    prior = table_iii_prior()
    counts = table_ii_sensitive_counts()
    exact = exact_posterior(prior, counts)
    omega = omega_posterior(prior, counts)
    print("\nTable III example (t1 and t2 cannot have HIV):")
    print(f"  exact posterior P*(HIV | t3)           = {exact[2, 0]:.3f}   (paper: 1)")
    print(f"  Omega-estimate posterior               = {omega[2, 0]:.3f}   (paper: 0.66)")
    print("  -> the Omega-estimate is approximate, but Figure 2 shows the error is small in practice")


def main() -> None:
    np.set_printoptions(precision=3, suppress=True)
    motivating_example()
    table_ii_example()
    table_iii_example()


if __name__ == "__main__":
    main()
