"""The serving daemon: many streams, coalesced writes, lock-free reads.

``repro serve`` turns the incremental publication engine into a long-running
multi-tenant service: a ``StreamRegistry`` hosts any number of named streams,
each backed by its own ``IncrementalPublisher`` and a disk ``ReleaseStore``
shard under a common data dir.  Writes to one stream are serialized through
a per-stream worker that *coalesces* every append/delete/update batch queued
within one tick into a single published version (the merged version is
numerically identical to publishing the batches one by one), while reads -
any historical version, the lineage, a skyline-audit report - are answered
lock-free from immutable published versions, even while a publication is in
flight.

This script is the whole lifecycle over real HTTP:

1. start a daemon on an ephemeral port (in-process; ``repro serve
   --data-dir ...`` runs the same app from the command line),
2. create a stream from seed rows (POST /streams publishes version 0),
3. fire an append, a deletion and a correction *concurrently* so the worker
   coalesces them into one version,
4. read back the lineage, a historical version and the latest skyline-audit
   report, plus the daemon's /metrics view and the span-derived per-stage
   breakdown (prior/partition/audit timings) a freshly published version
   carries,
5. restart the daemon on the same data dir and show every stream resumed
   from disk with its version numbering intact,
6. restart once more with a publication *process pool* and a one-slot write
   queue (``--publish-workers 2 --max-queue-batches 1`` on the CLI), flood
   the stream with concurrent writers, and show a well-behaved client: on
   429 it reads the ``Retry-After`` header, sleeps that many seconds and
   retries - backpressure costs it time, never data.

Run with:  python examples/serve_client.py
"""

from __future__ import annotations

import asyncio
import json
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.data.adult import generate_adult
from repro.obs.log import configure
from repro.serve import ServeApp

SEED_ROWS = 600
BATCH_ROWS = 80


class Daemon:
    """An in-process daemon on an ephemeral port (the CLI runs the same app)."""

    def __init__(self, data_dir: Path, **app_kwargs):
        self.app = ServeApp(data_dir, port=0, coalesce_ms=50.0, **app_kwargs)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._loop.run_forever, daemon=True)
        self._thread.start()
        asyncio.run_coroutine_threadsafe(self.app.start(), self._loop).result(30)

    def request(self, method: str, path: str, payload=None):
        body = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            f"http://127.0.0.1:{self.app.port}{path}", data=body, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=120) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def request_with_headers(self, method: str, path: str, payload=None):
        """Like :meth:`request`, also returning the response headers -
        a 429's ``Retry-After`` is how the daemon paces a flooding client."""
        body = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            f"http://127.0.0.1:{self.app.port}{path}", data=body, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=120) as response:
                return response.status, json.loads(response.read()), dict(response.headers)
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read()), dict(error.headers)

    def stop(self):
        asyncio.run_coroutine_threadsafe(self.app.stop(), self._loop).result(60)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()


def json_rows(table):
    return [
        {
            name: (value.item() if hasattr(value, "item") else value)
            for name, value in table.row(index).items()
        }
        for index in range(table.n_rows)
    ]


def main() -> None:
    # Structured logging, exactly as `repro serve --log-format json
    # --log-level warning` wires it: throttled requests and slow publishes
    # land on stderr as one JSON object per line, each carrying the
    # request's trace id (also echoed in the X-Repro-Trace-Id header).
    configure(level="warning", log_format="json")
    rows = json_rows(generate_adult(SEED_ROWS + 5 * BATCH_ROWS, seed=42))
    data_dir = Path(tempfile.mkdtemp(prefix="repro-serve-"))

    # -- 1-2. start the daemon, create a stream over HTTP -------------------------------
    daemon = Daemon(data_dir)
    print(f"daemon listening on port {daemon.app.port}, data dir {data_dir}")
    status, body = daemon.request(
        "POST", "/streams",
        {
            "name": "census",
            "rows": rows[:SEED_ROWS],
            "config": {"model": "bt", "b": 0.3, "t": 0.25, "k": 4,
                       "skyline": [[0.1, 0.3], [0.3, 0.25]]},
        },
    )
    assert status == 201, body
    stream = body["stream"]
    print(f"created stream {stream['name']!r}: {stream['rows']} rows -> "
          f"{stream['groups']} groups (satisfied: {stream['satisfied']})")

    # -- 3. concurrent mutations coalesce into one version ------------------------------
    # The three requests land inside one coalescing tick, so the worker
    # publishes a single merged version; each response still reports the
    # (shared) version that covers its batch.
    payloads = [
        ("append", {"rows": rows[SEED_ROWS:SEED_ROWS + BATCH_ROWS]}),
        ("delete", {"positions": list(range(25))}),
        ("update", {"positions": list(range(25, 45)),
                    "rows": rows[SEED_ROWS + BATCH_ROWS:SEED_ROWS + BATCH_ROWS + 20]}),
    ]
    outcomes = []

    def fire(kind, payload):
        outcomes.append((kind, *daemon.request("POST", f"/streams/census/{kind}", payload)))

    threads = [threading.Thread(target=fire, args=(kind, payload))
               for kind, payload in payloads]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for kind, status, body in outcomes:
        assert status == 200, (kind, body)
        delta = body["version"]["delta"]
        print(f"{kind}: published v{body['version']['version']} "
              f"(coalesced {delta['coalesced_operations']} operation(s): "
              f"+{delta['appended_rows']} -{delta['deleted_rows']} "
              f"~{delta['updated_rows']} rows)")

    # -- 4. lock-free reads: lineage, history, audit, metrics ---------------------------
    status, body = daemon.request("GET", "/streams/census/versions")
    print(f"lineage: {len(body['versions'])} versions")
    status, body = daemon.request("GET", "/streams/census/versions/0")
    print(f"version 0 (immutable history): {body['version']['rows']} rows, "
          f"{body['version']['groups']} groups")
    # A version published by this daemon carries its publish trace: the
    # span-derived stage breakdown says where the publication time went.
    status, body = daemon.request("GET", "/streams/census/versions/1")
    stages = body["stages"]
    breakdown = ", ".join(
        f"{name} {seconds * 1e3:.1f}ms"
        for name, seconds in sorted(stages["stages"].items())
    )
    print(f"v1 stage breakdown ({stages['publish']}, "
          f"{stages['duration_s'] * 1e3:.1f}ms total): {breakdown}")
    status, body = daemon.request("GET", "/streams/census/audit")
    worst = max(
        (entry["worst_case_risk"] for entry in body["audit"]["adversaries"]),
        default=0.0,
    )
    print(f"latest audit (v{body['version']}): "
          f"{'satisfied' if body['audit']['satisfied'] else 'BREACHED'}, "
          f"worst-case knowledge gain {worst:.3f} "
          f"across {body['audit']['skyline_size']} adversaries")
    status, body = daemon.request("GET", "/metrics")
    counters = body["streams"]["census"]["counters"]
    print(f"metrics: {counters['publishes']} publishes covered "
          f"{counters['coalesced_operations']} operations; server handled "
          f"{body['server']['counters']['requests']} requests")

    # -- 5. restart: every stream resumes from its disk shard ---------------------------
    daemon.stop()
    daemon = Daemon(data_dir)
    status, body = daemon.request("GET", "/streams/census")
    print(f"after restart: stream {body['stream']['name']!r} resumed with "
          f"{body['stream']['versions']} versions")
    status, body = daemon.request(
        "POST", "/streams/census/append",
        {"rows": rows[SEED_ROWS + BATCH_ROWS + 20:SEED_ROWS + 2 * BATCH_ROWS]},
    )
    assert status == 200, body
    print(f"append after resume: published v{body['version']['version']} "
          f"(numbering continued across the restart)")

    # -- 6. process-pool publication + bounded-queue backpressure -----------------------
    # The same data dir, now served with publication running in worker
    # *processes* and a deliberately tiny write queue.  Three writers flood
    # the stream concurrently; each one honors Retry-After when throttled.
    daemon.stop()
    daemon = Daemon(data_dir, publish_workers=2, max_queue_batches=1)
    print("\nrestarted with publish_workers=2, max_queue_batches=1 "
          "(CLI: repro serve --publish-workers 2 --max-queue-batches 1)")
    flood = [
        rows[SEED_ROWS + (2 + writer) * BATCH_ROWS:
             SEED_ROWS + (3 + writer) * BATCH_ROWS]
        for writer in range(3)
    ]
    throttles = []
    lock = threading.Lock()

    def polite_append(writer: int, batch) -> None:
        while True:
            status, body, headers = daemon.request_with_headers(
                "POST", "/streams/census/append", {"rows": batch}
            )
            if status == 200:
                print(f"writer {writer}: published v{body['version']['version']}")
                return
            assert status == 429, (status, body)
            wait = int(headers["Retry-After"])
            with lock:
                throttles.append(wait)
            print(f"writer {writer}: 429 (queue full), honoring "
                  f"Retry-After: {wait}s")
            time.sleep(wait)

    writers = [
        threading.Thread(target=polite_append, args=(writer, batch))
        for writer, batch in enumerate(flood)
    ]
    for thread in writers:
        thread.start()
    for thread in writers:
        thread.join()
    status, body = daemon.request("GET", "/metrics")
    stream = body["streams"]["census"]
    print(f"backpressure: {stream['counters']['rejected_batches']} rejected "
          f"batch(es) ({len(throttles)} throttle(s) honored), queue high-water "
          f"{stream['queue_high_water']}/{stream['max_queue_batches']}; every "
          f"batch still landed - {stream['versions']} versions on disk")
    # Pool mode stitches the worker-side publish trace under the daemon's
    # tick span: the per-stage breakdown was recorded inside the worker
    # process and shipped back over the job pipe.
    status, body = daemon.request(
        "GET", f"/streams/census/versions/{stream['versions'] - 1}"
    )
    worker = body["trace"]["children"][0]
    stages = body["stages"]
    print(f"pool-published v{stream['versions'] - 1}: stages "
          f"{sorted(stages['stages'])} recorded in worker pid "
          f"{worker['attributes']['pid']}, stitched under the daemon's "
          f"{body['trace']['name']} span")
    daemon.stop()


if __name__ == "__main__":
    main()
