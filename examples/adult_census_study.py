"""A miniature version of the paper's full evaluation (Section V) on the
synthetic Adult-like census data: anonymize with the four privacy models,
attack each release with adversaries of several knowledge levels, and compare
privacy protection against data utility.

Run with:  python examples/adult_census_study.py [n_rows]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import BackgroundKnowledgeAttack, generate_adult
from repro.experiments import MODEL_NAMES, PARA2, four_model_releases
from repro.utility import (
    QueryWorkloadGenerator,
    average_relative_error,
    discernibility_metric,
    global_certainty_penalty,
)


def main() -> None:
    n_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    parameters = PARA2  # k = l = 4, t = 0.2, b = 0.3
    table = generate_adult(n_rows, seed=2009)
    print(f"synthetic Adult-like table: {n_rows} rows; parameters {parameters.describe()}\n")

    print("anonymizing with the four models of Section V ...")
    releases = four_model_releases(table, parameters)
    for name in MODEL_NAMES:
        result = releases[name]
        print(f"  {name:<27} {result.release.n_groups:>5} groups   "
              f"partition {result.partition_seconds:6.2f}s   "
              f"preparation {result.prepare_seconds:6.2f}s")

    print("\nprobabilistic background-knowledge attack (vulnerable tuples, threshold t"
          f" = {parameters.t:g}):")
    header = f"  {'adversary':<12}" + "".join(f"{name:>28}" for name in MODEL_NAMES)
    print(header)
    for b_prime in (0.2, 0.3, 0.4, 0.5):
        attack = BackgroundKnowledgeAttack(table, b_prime)
        row = f"  b'={b_prime:<9}"
        for name in MODEL_NAMES:
            outcome = attack.attack(releases[name].release.groups, parameters.t)
            row += f"{outcome.vulnerable_tuples:>28}"
        print(row)

    print("\ngeneral utility (lower is better):")
    print(f"  {'model':<27}{'DM':>14}{'GCP':>14}{'query error %':>16}")
    queries = QueryWorkloadGenerator(table, query_dimension=3, selectivity=0.07, seed=7).generate(200)
    for name in MODEL_NAMES:
        release = releases[name].release
        print(f"  {name:<27}{discernibility_metric(release):>14.0f}"
              f"{global_certainty_penalty(release):>14.0f}"
              f"{average_relative_error(release, queries):>16.1f}")

    print("\nreading: the (B,t)-private table blocks the background-knowledge attack "
          "(few or no vulnerable tuples) while keeping utility in the same range as "
          "the classical models - the trade-off the paper's Figures 1, 5 and 6 report.")


if __name__ == "__main__":
    main()
