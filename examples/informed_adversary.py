"""Extensions in action: choosing the bandwidth from data, and attacking a
release with an adversary who already knows some individuals' diseases.

1. Likelihood cross-validation (`repro.knowledge.selection`) picks a bandwidth
   that best explains held-out data - a principled anchor for the publisher's
   skyline instead of a guess.
2. An `InformedAdversary` combines that correlational knowledge with exact
   knowledge of a fraction of individuals (Chen et al.'s instance-level
   knowledge, Section II-D), and we measure how much extra damage that does to
   an l-diverse release versus a (B,t)-private release.

Run with:  python examples/informed_adversary.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import BTPrivacy, DistinctLDiversity, anonymize, generate_adult
from repro.knowledge import select_bandwidth
from repro.privacy import InformedAdversary


def main() -> None:
    table = generate_adult(1_500, seed=77)

    # 1. Which adversary is the most realistic?  Pick the bandwidth by
    #    cross-validated likelihood on the data itself.
    best_b, scores = select_bandwidth(
        table, candidates=(0.2, 0.3, 0.5, 1.0), n_folds=3
    )
    print("cross-validated bandwidth selection (higher log-likelihood = better fit):")
    for score in scores:
        marker = "  <- selected" if score.b == best_b else ""
        print(f"  b = {score.b:<4}  held-out log-likelihood = {score.log_likelihood:.4f}{marker}")

    # 2. Publish under (B,t)-privacy calibrated to that adversary, and under
    #    plain l-diversity for comparison.
    threshold = 0.25
    bt_release = anonymize(table, BTPrivacy(best_b, threshold), k=4).release
    ld_release = anonymize(table, DistinctLDiversity(4), k=4).release
    print(f"\n(B,t)-private release: {bt_release.n_groups} groups; "
          f"4-diverse release: {ld_release.n_groups} groups")

    # 3. Attack both with adversaries who also know the sensitive value of
    #    0%, 10% and 30% of the individuals.
    print("\nvulnerable tuples (threshold t = 0.25) when the adversary also knows"
          " some individuals outright:")
    print(f"  {'known fraction':<16}{'4-diversity':>14}{'(B,t)-privacy':>16}")
    for fraction in (0.0, 0.1, 0.3):
        adversary = InformedAdversary.with_random_knowledge(table, best_b, fraction, seed=5)
        ld_outcome = adversary.attack(ld_release.groups, threshold)
        bt_outcome = adversary.attack(bt_release.groups, threshold)
        print(f"  {fraction:<16.0%}{ld_outcome.vulnerable_tuples:>14}{bt_outcome.vulnerable_tuples:>16}")

    print("\nreading: instance-level knowledge compounds the correlational attack on "
          "l-diversity, while the (B,t)-private table degrades far more gracefully.")


if __name__ == "__main__":
    main()
