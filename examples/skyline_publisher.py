"""A data-publisher workflow with skyline (B,t)-privacy (Definition 2).

The publisher does not know how much background knowledge the adversary has,
so she:

1. mines the data for the strongest correlational facts an adversary could
   know (Injector-style negative association rules),
2. chooses a *skyline* of (B, t) pairs - strict budgets for knowledgeable
   adversaries, looser budgets for ignorant ones - including a per-attribute
   bandwidth for an adversary who knows demographics better than work history,
3. publishes one table that satisfies every point of the skyline, and
4. verifies the release against adversaries at and between the skyline points
   (the continuity property of Section V-C is what makes this sufficient).

Run with:  python examples/skyline_publisher.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import (
    Bandwidth,
    SkylineAuditEngine,
    SkylineBTPrivacy,
    anonymize,
    generate_adult,
)
from repro.knowledge import mine_negative_rules
from repro.utility import utility_report


def main() -> None:
    table = generate_adult(2_000, seed=42)
    qi = list(table.quasi_identifier_names)

    # 1. What could an adversary know?  Mine hard negative rules from the data.
    rules = mine_negative_rules(table, min_support=100)
    gender_rules = [rule for rule in rules if rule.attribute == "Gender"][:4]
    print("strongest mined correlational facts (Injector-style negative rules):")
    for rule in gender_rules:
        print("  ", rule)
    print(f"  ... {len(rules)} rules in total\n")

    # 2. The skyline: a sharp demographic adversary, a balanced adversary, and a
    #    weak adversary, each with its own disclosure budget.
    demographic_adversary = Bandwidth.split(
        ["Age", "Race", "Gender"], 0.2, ["Workclass", "Education", "Marital-status"], 0.5
    )
    skyline = [
        (demographic_adversary, 0.30),
        (0.3, 0.25),
        (0.5, 0.15),
    ]
    model = SkylineBTPrivacy(skyline)
    result = anonymize(table, model, k=4)
    release = result.release
    print(f"published one release satisfying all {len(skyline)} skyline points: "
          f"{release.n_groups} groups, avg size {release.average_group_size():.1f}")
    report = utility_report(release)
    print(f"utility: DM = {report['discernibility_metric']:.0f}, "
          f"GCP = {report['global_certainty_penalty']:.0f}\n")

    # 3. Verify against the skyline adversaries *and* adversaries in between -
    #    the continuity of the disclosure risk means nothing blows up between
    #    points.  The SkylineAuditEngine batches all of them into one pass
    #    (one shared kernel estimation instead of one per adversary).
    audit_points = [(b, 0.30) for b in (0.2, 0.25, 0.3, 0.35, 0.4, 0.5)]
    audit_points.append((demographic_adversary, 0.30))
    engine = SkylineAuditEngine(table, audit_points)
    report = engine.audit(release.groups)
    print("worst-case knowledge gain of audit adversaries against the release:")
    for entry in report.entries:
        print(
            f"  Adv{entry.adversary.describe()}  worst-case gain = "
            f"{entry.attack.worst_case_risk:.3f}"
        )
    print(
        f"audited {len(report.entries)} adversaries in "
        f"{report.timings['prepare_seconds'] + report.timings['audit_seconds']:.2f}s "
        f"(skyline {'satisfied' if report.satisfied else 'breached'})"
    )


if __name__ == "__main__":
    main()
